"""The declarative sweep API: axes, specs, engine, registry, ad-hoc.

Property tests pin :class:`Axis` expansion (spacing, endpoints,
integer dedup, in-range flags); the engine tests pin grid order and
``SweepResult`` renderers; the ad-hoc tests check the grid-composition
path ``scripts/sweep.py`` drives.  Byte-level parity of the ported
experiment modules lives in ``tests/test_table_parity.py``.
"""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scale import Scale
from repro.experiments import link_speed, multiplexing, rtt
from repro.experiments.api import (FAKE_TREE, AdhocBase, Axis, Cell,
                                   ExperimentSpec, SweepResult,
                                   adhoc_spec, expand, experiments,
                                   get_experiment, run_experiment)
from repro.experiments.common import run_seeds

MICRO = Scale(duration_s=3.0, packet_budget=4_000, min_duration_s=2.0,
              n_seeds=1, sweep_points=2)


class TestAxis:
    @given(st.integers(2, 40), st.floats(0.1, 1e3),
           st.floats(1.0, 1e4))
    @settings(max_examples=50, deadline=None)
    def test_log_endpoints_and_ratios(self, n, lo, span):
        hi = lo * span
        axis = Axis.log("x", lo, hi, n)
        assert len(axis.values) == n
        assert axis.values[0] == pytest.approx(lo)
        assert axis.values[-1] == pytest.approx(hi)
        ratios = [b / a for a, b in zip(axis.values, axis.values[1:])]
        assert all(r == pytest.approx(ratios[0]) for r in ratios)

    @given(st.integers(2, 40), st.floats(-1e3, 1e3),
           st.floats(0.0, 1e4))
    @settings(max_examples=50, deadline=None)
    def test_linear_endpoints_and_steps(self, n, lo, span):
        hi = lo + span
        axis = Axis.linear("x", lo, hi, n)
        assert len(axis.values) == n
        assert axis.values[0] == pytest.approx(lo)
        assert axis.values[-1] == pytest.approx(hi)
        steps = [b - a for a, b in zip(axis.values, axis.values[1:])]
        assert all(s == pytest.approx(steps[0], abs=1e-9)
                   for s in steps)

    @given(st.integers(2, 60))
    @settings(max_examples=40, deadline=None)
    def test_log_integer_dedupes_and_covers(self, n):
        axis = Axis.log("n", 1, 100, n, integer=True)
        values = list(axis.values)
        assert values[0] == 1 and values[-1] == 100
        assert values == sorted(set(values))
        assert all(isinstance(v, int) for v in values)

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            Axis.log("x", 1.0, 10.0, 1)
        with pytest.raises(ValueError):
            Axis.linear("x", 1.0, 10.0, 1)
        with pytest.raises(ValueError):
            Axis.log("x", 0.0, 10.0, 3)   # log needs lo > 0
        with pytest.raises(ValueError):
            Axis.of("x", [])

    def test_ensure_adds_and_sorts(self):
        axis = Axis.linear("rtt_ms", 1.0, 300.0, 4).ensure(150.0)
        assert 150.0 in axis.values
        assert list(axis.values) == sorted(axis.values)
        # already-present values are not duplicated
        again = axis.ensure(150.0)
        assert again.values == axis.values

    def test_parse_spacings(self):
        axis = Axis.parse("rtt_ms=log:1:300:7")
        assert axis.name == "rtt_ms" and len(axis.values) == 7
        axis = Axis.parse("senders=logint:1:100:6")
        assert axis.values[0] == 1 and axis.values[-1] == 100
        axis = Axis.parse("delta=lin:0.1:10:3")
        assert axis.values[1] == pytest.approx(5.05)

    def test_parse_value_lists(self):
        axis = Axis.parse("queue=droptail,codel")
        assert axis.values == ("droptail", "codel")
        axis = Axis.parse("rtt_ms=50,150.5,250")
        assert axis.values == (50, 150.5, 250)

    @pytest.mark.parametrize("bad", ["queue", "=droptail", "x=",
                                     "x=log:1:10", "x=log:a:b:3",
                                     "x=,,"])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            Axis.parse(bad)

    @pytest.mark.parametrize("bad", ["x=log:1:300:0", "x=log:1:300:1",
                                     "x=lin:10:1:5", "x=log:0:10:3",
                                     "x=log:one:300:7", "x=lin:1:2:2.5"])
    def test_parse_errors_name_the_offending_spec(self, bad):
        """Eager validation at parse time, with the spec string in the
        message — a bad --axis must fail before any simulation, naming
        itself."""
        with pytest.raises(ValueError) as err:
            Axis.parse(bad)
        assert repr(bad) in str(err.value)

    @given(st.integers(2, 30),
           st.floats(0.01, 1e3, allow_nan=False),
           st.floats(1.0, 1e4, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_parse_spacing_round_trips_constructor(self, n, lo, span):
        """``NAME=log:LO:HI:N`` parses to the exact grid Axis.log
        builds (and likewise for lin) — the CLI form is a pure spelling
        of the constructor, not a second implementation."""
        hi = lo * span
        parsed = Axis.parse(f"x=log:{lo!r}:{hi!r}:{n}")
        assert parsed.values == Axis.log("x", lo, hi, n).values
        parsed = Axis.parse(f"x=lin:{lo!r}:{hi!r}:{n}")
        assert parsed.values == Axis.linear("x", lo, hi, n).values

    @given(st.lists(st.one_of(
        st.integers(-1000, 1000),
        st.floats(-1e6, 1e6, allow_nan=False).map(
            lambda v: round(v, 6)),
        st.text(alphabet="abcdefgh_", min_size=1, max_size=8)),
        min_size=1, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_parse_value_list_round_trips(self, values):
        """A comma-joined value list parses back to the same values
        (numeric tokens as numbers, everything else as strings)."""
        text = ",".join(str(v) for v in values)
        parsed = Axis.parse(f"x={text}")
        assert list(parsed.values) == [
            v if isinstance(v, (int, float)) else str(v)
            for v in values]

    def test_legacy_sweeps_ride_on_axis_values(self):
        # The modules' sweep helpers and the Axis grid must agree.
        assert multiplexing.sweep_senders(6) == list(
            Axis.log("n", 1, 100, 6, integer=True).values)
        assert link_speed.sweep_speeds(5)[0] == pytest.approx(1.0)
        assert 150.0 in rtt.sweep_rtts(5)


class TestExpand:
    @staticmethod
    def _spec(schemes=("a", "b"), skip=None):
        def build(scheme, point):
            if skip and (scheme, point["x"]) in skip:
                return None
            from repro.core.scenario import NetworkConfig
            return Cell(NetworkConfig(sender_kinds=(("cubic",) * 2)))

        return ExperimentSpec(
            name="t", schemes=schemes,
            axes=(Axis.of("x", (1, 2),
                          in_range=lambda s, v: not (s == "a"
                                                     and v == 2)),
                  Axis.of("y", ("p", "q"))),
            build=build,
            metrics=lambda s, p, c, r: {"m": 0.0})

    def test_axis_major_order_schemes_inner(self):
        points, plans = expand(self._spec(), MICRO)
        assert [(p["x"], p["y"]) for p in points] == \
            [(1, "p"), (1, "q"), (2, "p"), (2, "q")]
        assert [(pl.scheme, pl.point["x"], pl.point["y"])
                for pl in plans[:4]] == \
            [("a", 1, "p"), ("b", 1, "p"), ("a", 1, "q"), ("b", 1, "q")]

    def test_in_range_flags_and_skips(self):
        _, plans = expand(self._spec(skip={("b", 1)}), MICRO)
        assert len(plans) == 6   # 8 combos minus two skipped
        flags = {(pl.scheme, pl.point["x"]): pl.in_range
                 for pl in plans}
        assert flags[("a", 2)] is False
        assert flags[("a", 1)] is True
        assert flags[("b", 2)] is True


class TestSweepResult:
    @staticmethod
    def _result():
        return SweepResult(
            name="demo", axis_names=("x",),
            rows=[{"scheme": "cubic", "x": 1, "m": 0.5,
                   "in_training_range": True},
                  {"scheme": "tao", "x": 1, "m": 1.25,
                   "in_training_range": False}])

    def test_columns_order_and_schemes(self):
        result = self._result()
        assert result.columns() == ["scheme", "x", "m",
                                    "in_training_range"]
        assert result.schemes() == ["cubic", "tao"]

    def test_select(self):
        result = self._result()
        assert [r["m"] for r in result.select(scheme="tao")] == [1.25]
        assert [r["scheme"] for r in result.select(x=1)] == \
            ["cubic", "tao"]

    def test_format_table_marks_out_of_range(self):
        text = self._result().format_table()
        assert "demo" in text and "cubic" in text
        lines = text.splitlines()
        assert lines[1].split() == ["scheme", "x", "m", "range"]
        assert lines[-2].endswith("*")
        assert "training range" in lines[-1]

    def test_csv_and_json_round_trip(self):
        result = self._result()
        csv_lines = result.to_csv().splitlines()
        assert csv_lines[0] == "scheme,x,m,in_training_range"
        assert len(csv_lines) == 3
        payload = json.loads(result.to_json())
        assert payload["experiment"] == "demo"
        assert payload["axes"] == ["x"]
        assert payload["rows"][1]["m"] == 1.25


class TestRegistry:
    def test_all_ten_registered_in_paper_order(self):
        entries = experiments()
        assert [e.eid for e in entries] == \
            [f"E{i}" for i in range(1, 11)]
        assert sum(e.spec is not None for e in entries) == 9

    def test_lookup_by_eid_and_name(self):
        assert get_experiment("E4").name == "rtt"
        assert get_experiment("link_speed").eid == "E2"
        with pytest.raises(KeyError):
            get_experiment("E42")

    def test_specs_declare_their_assets(self):
        for entry in experiments():
            if entry.spec is None:
                continue
            referenced = set()
            _, plans = expand(entry.spec, MICRO)
            for plan in plans:
                if plan.cell.trees:
                    referenced.update(plan.cell.trees.values())
            assert referenced <= set(entry.assets)


class TestAdhoc:
    def test_grid_runs_and_matches_run_seeds(self):
        spec = adhoc_spec(
            axes=(Axis.of("queue", ("droptail", "codel")),),
            schemes=("cubic",), bound=False)
        result = run_experiment(spec, scale=MICRO)
        assert len(result.rows) == 2
        # the engine's cells replay exactly through the plain seed path
        _, plans = expand(spec, MICRO)
        direct = run_seeds(plans[0].cell.config, scale=MICRO)
        from repro.experiments.common import mean_normalized_score
        assert result.rows[0]["mean_objective"] == \
            mean_normalized_score(direct, plans[0].cell.config)

    def test_tao_schemes_become_learners(self):
        spec = adhoc_spec(axes=(Axis.of("rtt_ms", (50.0,)),),
                          schemes=("tao_rtt_50_250",))
        _, plans = expand(spec, MICRO)
        assert plans[0].cell.config.sender_kinds == \
            ("learner", "learner")
        assert plans[0].cell.trees == {"learner": "tao_rtt_50_250"}
        result = run_experiment(
            spec, scale=MICRO, trees={"tao_rtt_50_250": FAKE_TREE})
        schemes = result.schemes()
        assert schemes == ["tao_rtt_50_250", "omniscient"]

    def test_base_overrides_apply(self):
        spec = adhoc_spec(
            axes=(Axis.of("senders", (1, 3)),),
            schemes=("newreno",),
            base=AdhocBase(link_mbps=8.0, rtt_ms=50.0,
                           buffer_bdp=None))
        _, plans = expand(spec, MICRO)
        config = plans[1].cell.config
        assert config.sender_kinds == ("newreno",) * 3
        assert config.link_speeds_mbps == (8.0,)
        assert config.rtt_ms == 50.0
        assert math.isinf(config.buffer_packets())

    def test_bound_rows_per_point(self):
        spec = adhoc_spec(axes=(Axis.of("link_mbps", (8.0, 16.0)),),
                          schemes=("cubic",))
        result = run_experiment(spec, scale=MICRO)
        omni = list(result.select(scheme="omniscient"))
        assert len(omni) == 2
        assert all(row["qdelay_ms"] == 0.0 for row in omni)

    @pytest.mark.parametrize("axis", [
        Axis.of("outage", ("none", "0.5")),       # bad outage token
        Axis.of("rtt_ms", ("fast",)),             # non-numeric value
    ])
    def test_malformed_axis_values_fail_at_spec_time(self, axis):
        """Values are validated when the spec is composed — a bad
        --axis value names itself before any cell is simulated."""
        with pytest.raises(ValueError, match=axis.name):
            adhoc_spec([axis], ["newreno"])

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError):
            adhoc_spec(axes=(Axis.of("warp_factor", (9,)),),
                      schemes=("cubic",))
        with pytest.raises(ValueError):
            adhoc_spec(axes=(Axis.of("rtt_ms", (50,)),), schemes=())

    def test_missing_asset_fails_before_simulating(self):
        spec = adhoc_spec(axes=(Axis.of("rtt_ms", (50.0,)),),
                          schemes=("tao_nonexistent",))
        with pytest.raises(FileNotFoundError):
            run_experiment(spec, scale=MICRO)


class TestSeedFanoutFold:
    def test_run_seeds_parallel_is_deprecated_alias(self):
        from repro.core.scenario import NetworkConfig
        from repro.experiments.common import run_seeds_parallel
        config = NetworkConfig(link_speeds_mbps=(8.0,), rtt_ms=100.0,
                               sender_kinds=("cubic", "cubic"))
        serial = run_seeds(config, scale=MICRO)
        with pytest.deprecated_call():
            legacy = run_seeds_parallel(config, scale=MICRO, jobs=1)
        assert [r.flows[0].delivered_bytes for r in serial] == \
            [r.flows[0].delivered_bytes for r in legacy]
