"""End-to-end integration tests across the whole stack.

These run short simulations through the public API and assert on
physical invariants (conservation, capacity, fairness) rather than
specific numbers.
"""

import math

import pytest

from repro import NetworkConfig, Scale, build_simulation, run_config
from repro.remy.action import Action
from repro.remy.tree import WhiskerTree

FAST = Scale(duration_s=15.0, packet_budget=30_000, n_seeds=1)


def run_once(config, trees=None, seed=1, duration=15.0,
             trace_queues=False, workload_intervals=None):
    handle = build_simulation(config, trees=trees, seed=seed,
                              trace_queues=trace_queues,
                              workload_intervals=workload_intervals)
    return handle, handle.run(duration)


class TestCapacityInvariants:
    def test_throughput_bounded_by_link_rate(self):
        config = NetworkConfig(
            link_speeds_mbps=(10.0,), rtt_ms=100.0,
            sender_kinds=("newreno",), mean_on_s=100.0, mean_off_s=0.0,
            buffer_bdp=5.0)
        _, result = run_once(config, duration=30.0)
        flow = result.flows[0]
        assert flow.throughput_bps <= 10e6 * 1.01
        assert flow.throughput_bps > 8e6   # and the link is usable

    def test_utilization_in_unit_range(self):
        config = NetworkConfig(sender_kinds=("cubic", "cubic"))
        _, result = run_once(config)
        assert 0.0 <= result.bottleneck_utilization <= 1.0

    def test_packet_conservation_end_to_end(self):
        config = NetworkConfig(
            link_speeds_mbps=(5.0,), rtt_ms=100.0,
            sender_kinds=("newreno", "newreno"),
            mean_on_s=1.0, mean_off_s=1.0, buffer_bdp=2.0)
        handle, result = run_once(config, duration=20.0)
        bottleneck = handle.built.link("A", "B")
        stats = bottleneck.queue.stats
        sent = sum(f.packets_sent for f in result.flows)
        # Every transmitted packet was admitted or dropped at the
        # bottleneck (access links are lossless and instant).
        assert stats.enqueued + stats.dropped == sent
        delivered = sum(f.packets_delivered for f in result.flows)
        assert delivered <= stats.dequeued


class TestFairness:
    def test_sfq_codel_equalizes_cubic_flows(self):
        config = NetworkConfig(
            link_speeds_mbps=(20.0,), rtt_ms=100.0,
            sender_kinds=("cubic", "cubic"),
            mean_on_s=50.0, mean_off_s=0.0, buffer_bdp=5.0,
            queue="sfq_codel")
        _, result = run_once(config, duration=30.0)
        tpts = sorted(f.throughput_bps for f in result.flows)
        assert tpts[0] > 0.6 * tpts[1], \
            "sfqCoDel should keep simultaneous flows near-equal"

    def test_sfq_codel_keeps_delay_near_target(self):
        config = NetworkConfig(
            link_speeds_mbps=(20.0,), rtt_ms=100.0,
            sender_kinds=("cubic", "cubic"),
            mean_on_s=50.0, mean_off_s=0.0, buffer_bdp=5.0,
            queue="sfq_codel")
        _, result = run_once(config, duration=30.0)
        for flow in result.flows:
            assert flow.queueing_delay_s < 0.100, \
                "CoDel should hold queueing delay well under a BDP"


class TestRemyCCIntegration:
    def test_paced_rule_table_runs_and_paces(self):
        # A stable rule table: window fixed point 40, pacing 5 ms.
        tree = WhiskerTree(default_action=Action(0.5, 20.0, 0.005))
        config = NetworkConfig(
            link_speeds_mbps=(10.0,), rtt_ms=100.0,
            sender_kinds=("learner",), mean_on_s=100.0, mean_off_s=0.0,
            buffer_bdp=5.0)
        _, result = run_once(config, trees={"learner": tree},
                             duration=20.0)
        flow = result.flows[0]
        assert flow.packets_delivered > 1000
        # Pacing at 5 ms caps the rate near 200 pkt/s = 2.4 Mbps.
        assert flow.throughput_bps < 3.2e6

    def test_aggressive_table_fills_finite_buffer(self):
        tree = WhiskerTree(default_action=Action(1.0, 4.0, 2e-5))
        config = NetworkConfig(
            link_speeds_mbps=(10.0,), rtt_ms=100.0,
            sender_kinds=("learner",), mean_on_s=100.0, mean_off_s=0.0,
            buffer_bdp=1.0)
        handle, result = run_once(config, trees={"learner": tree},
                                  duration=15.0)
        assert handle.built.link("A", "B").queue.stats.dropped > 0


class TestParkingLotIntegration:
    def test_three_flows_share_two_bottlenecks(self):
        config = NetworkConfig(
            topology="parking_lot", link_speeds_mbps=(20.0, 20.0),
            rtt_ms=150.0, sender_kinds=("newreno",) * 3,
            mean_on_s=100.0, mean_off_s=0.0, buffer_bdp=2.0)
        _, result = run_once(config, duration=30.0)
        # Link capacities respected.
        assert result.flows[0].throughput_bps \
            + result.flows[1].throughput_bps <= 20e6 * 1.02
        assert result.flows[0].throughput_bps \
            + result.flows[2].throughput_bps <= 20e6 * 1.02
        # Everyone makes progress.
        for flow in result.flows:
            assert flow.packets_delivered > 100

    def test_crossing_flow_sees_both_hops_delay(self):
        config = NetworkConfig(
            topology="parking_lot", link_speeds_mbps=(20.0, 20.0),
            rtt_ms=150.0, sender_kinds=("newreno",) * 3,
            mean_on_s=100.0, mean_off_s=0.0, buffer_bdp=2.0)
        _, result = run_once(config, duration=10.0)
        assert result.flows[0].base_delay_s \
            > result.flows[1].base_delay_s


class TestTracing:
    def test_queue_trace_capture(self):
        config = NetworkConfig(
            link_speeds_mbps=(5.0,), rtt_ms=100.0,
            sender_kinds=("cubic",), mean_on_s=100.0, mean_off_s=0.0,
            buffer_bdp=2.0)
        handle, _ = run_once(config, trace_queues=True, duration=10.0)
        trace = handle.traces["A->B"]
        assert len(trace) > 0
        assert trace.max_length() > 0
        times, lengths = trace.sample(step_s=0.1, until=10.0)
        assert len(times) == len(lengths)
        assert trace.mean_length(10.0) >= 0.0

    def test_scheduled_workload_intervals(self):
        config = NetworkConfig(
            link_speeds_mbps=(5.0,), rtt_ms=100.0,
            sender_kinds=("cubic", "newreno"),
            mean_on_s=1.0, mean_off_s=1.0, buffer_bdp=2.0)
        handle, result = run_once(
            config, duration=10.0,
            workload_intervals={0: [(0.0, 10.0)], 1: [(4.0, 6.0)]})
        assert result.flows[0].on_time_s == pytest.approx(10.0)
        assert result.flows[1].on_time_s == pytest.approx(2.0)


class TestDeterminism:
    def test_same_seed_same_result(self):
        config = NetworkConfig(sender_kinds=("cubic", "cubic"))
        first = run_config(config, seed=3, scale=FAST)
        second = run_config(config, seed=3, scale=FAST)
        for a, b in zip(first.flows, second.flows):
            assert a.delivered_bytes == b.delivered_bytes
            assert a.mean_delay_s == b.mean_delay_s

    def test_different_seed_different_result(self):
        config = NetworkConfig(sender_kinds=("cubic", "cubic"))
        first = run_config(config, seed=3, scale=FAST)
        second = run_config(config, seed=4, scale=FAST)
        assert any(a.delivered_bytes != b.delivered_bytes
                   for a, b in zip(first.flows, second.flows))


class TestEdgeCases:
    def test_sender_that_never_turns_on(self):
        config = NetworkConfig(
            link_speeds_mbps=(5.0,), rtt_ms=100.0,
            sender_kinds=("cubic", "cubic"),
            mean_on_s=0.001, mean_off_s=10_000.0, buffer_bdp=2.0)
        _, result = run_once(config, seed=2, duration=5.0)
        for flow in result.flows:
            assert flow.throughput_bps >= 0.0

    def test_tiny_buffer(self):
        config = NetworkConfig(
            link_speeds_mbps=(5.0,), rtt_ms=100.0,
            sender_kinds=("newreno",), mean_on_s=100.0, mean_off_s=0.0,
            buffer_bdp=0.01)    # ~1 packet of buffer
        _, result = run_once(config, duration=10.0)
        assert result.flows[0].packets_delivered > 10

    def test_single_sender_single_packet_scale(self):
        config = NetworkConfig(
            link_speeds_mbps=(0.1,), rtt_ms=500.0,
            sender_kinds=("newreno",), mean_on_s=100.0, mean_off_s=0.0,
            buffer_bdp=5.0)
        _, result = run_once(config, duration=20.0)
        assert result.flows[0].packets_delivered >= 1
