"""Compiled whisker trees: equivalence with the interpreted path.

The compiled fast path is only allowed to exist because it is
*indistinguishable* from ``WhiskerTree.lookup`` + ``Whisker.record_use``
— these properties pin that, on randomized trees crossed with
randomized and boundary signal vectors (exact split thresholds, domain
corners, clip caps).
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.protocols.remycc import RemyCCController
from repro.remy.action import Action
from repro.remy.compiled import (CompiledTree, UsageStats,
                                 compiled_from_json)
from repro.remy.memory import (SIGNAL_LOWER_BOUNDS, SIGNAL_UPPER_BOUNDS,
                               Memory)
from repro.remy.tree import WhiskerTree

#: Strictly-inside caps, exactly as Memory clips them.
CAPS = tuple(high * (1.0 - 1e-9) for high in SIGNAL_UPPER_BOUNDS)


def random_tree(rng: random.Random, n_splits: int) -> WhiskerTree:
    """A tree grown by ``n_splits`` random splits with random actions.

    Split points come from randomly recorded usage (the optimizer's
    mean-signal rule), so thresholds land at arbitrary floats rather
    than tidy box centres.
    """
    mask = tuple(rng.random() < 0.7 for _ in range(4))
    if not any(mask):
        mask = (True, True, True, True)
    tree = WhiskerTree(mask=mask)
    for _ in range(n_splits):
        whisker = rng.choice(tree.whiskers())
        for _ in range(rng.randint(0, 4)):
            whisker.record_use(tuple(
                rng.uniform(low, high) for low, high
                in zip(whisker.lower, whisker.upper)))
        tree.split(whisker)
    for index in range(len(tree)):
        tree.set_action(index, Action(rng.uniform(0.0, 2.0),
                                      rng.uniform(-32.0, 64.0),
                                      rng.uniform(2e-5, 1.0)))
    tree.reset_stats()
    return tree


def probe_vectors(tree: WhiskerTree, rng: random.Random,
                  n_random: int) -> list:
    """Random vectors plus boundary ones built from the tree's own
    split thresholds, the domain corners, and the clip caps."""
    compiled = tree.compiled()
    per_dim = [[SIGNAL_LOWER_BOUNDS[d], CAPS[d]] for d in range(4)]
    for dim, threshold in zip(compiled.dims, compiled.thresholds):
        per_dim[dim].append(threshold)
    vectors = []
    for _ in range(n_random):
        vectors.append(tuple(
            rng.uniform(SIGNAL_LOWER_BOUNDS[d], CAPS[d]) for d in range(4)))
    for _ in range(n_random):
        vectors.append(tuple(rng.choice(per_dim[d]) for d in range(4)))
    return vectors


class TestLookupEquivalence:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_compiled_lookup_matches_interpreted(self, seed):
        rng = random.Random(seed)
        tree = random_tree(rng, n_splits=rng.randint(0, 4))
        compiled = tree.compiled()
        leaves = tree.whiskers()
        assert compiled.n_leaves == len(leaves)
        for vector in probe_vectors(tree, rng, n_random=30):
            assert leaves[compiled.lookup(vector)] is tree.lookup(vector)

    def test_leaf_indices_follow_whisker_order(self):
        rng = random.Random(7)
        tree = random_tree(rng, n_splits=3)
        compiled = tree.compiled()
        for index, whisker in enumerate(tree.whiskers()):
            centre = tuple((low + high) / 2.0 for low, high
                           in zip(whisker.lower, whisker.upper))
            assert compiled.lookup(centre) == index

    def test_actions_flattened_in_leaf_order(self):
        rng = random.Random(11)
        tree = random_tree(rng, n_splits=2)
        compiled = tree.compiled()
        for index, whisker in enumerate(tree.whiskers()):
            assert compiled.action_m[index] == whisker.action.window_multiple
            assert compiled.action_b[index] == whisker.action.window_increment
            assert compiled.action_tau[index] == whisker.action.intersend_s


class TestFlatStats:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_merged_stats_equal_record_use_exactly(self, seed):
        """Flat accumulation + one merge == per-hit record_use, bitwise."""
        rng = random.Random(seed)
        tree = random_tree(rng, n_splits=rng.randint(0, 3))
        reference = tree.clone()
        compiled = tree.compiled()
        stats = compiled.new_stats()
        record = stats.record
        for vector in probe_vectors(tree, rng, n_random=60):
            reference.lookup(vector).record_use(vector)
            record(compiled.lookup(vector), vector)
        stats.merge_into(tree)
        for mine, theirs in zip(tree.whiskers(), reference.whiskers()):
            assert mine.use_count == theirs.use_count
            assert mine.signal_sums == theirs.signal_sums

    def test_merge_resets_the_accumulator(self):
        tree = WhiskerTree()
        stats = tree.compiled().new_stats()
        stats.record(0, (1.0, 2.0, 3.0, 4.0))
        stats.merge_into(tree)
        stats.merge_into(tree)   # second merge must be a no-op
        whisker = tree.whiskers()[0]
        assert whisker.use_count == 1
        assert whisker.signal_sums == [1.0, 2.0, 3.0, 4.0]

    def test_size_mismatch_rejected(self):
        tree = WhiskerTree()
        with pytest.raises(ValueError):
            UsageStats(5).merge_into(tree)

    def test_as_lists_matches_extract_stats_shape(self):
        rng = random.Random(3)
        tree = random_tree(rng, n_splits=1)
        stats = tree.compiled().new_stats()
        stats.record(1, (0.5, 0.25, 0.125, 2.0))
        counts, sums = stats.as_lists()
        assert len(counts) == len(tree) and len(sums) == len(tree)
        assert counts[1] == 1
        assert sums[1] == [0.5, 0.25, 0.125, 2.0]


class TestTreeCaches:
    def test_whisker_list_cached_until_split(self):
        tree = WhiskerTree()
        first = tree.whiskers()
        assert tree.whiskers() is first
        tree.split(first[0])
        second = tree.whiskers()
        assert second is not first
        assert len(second) == 16

    def test_set_action_keeps_leaves_but_recompiles(self):
        tree = WhiskerTree()
        leaves = tree.whiskers()
        old_compiled = tree.compiled()
        tree.set_action(0, Action(0.5, 2.0, 0.01))
        assert tree.whiskers() is leaves
        new_compiled = tree.compiled()
        assert new_compiled is not old_compiled
        assert new_compiled.action_m[0] == 0.5

    def test_clone_does_not_share_caches(self):
        tree = WhiskerTree()
        tree.compiled()
        twin = tree.clone()
        twin.set_action(0, Action(0.25, 1.0, 0.01))
        assert tree.compiled().action_m[0] != 0.25

    def test_json_memo_returns_shared_structure(self):
        rng = random.Random(5)
        tree = random_tree(rng, n_splits=2)
        text = tree.to_json()
        assert compiled_from_json(text) is compiled_from_json(text)
        other = compiled_from_json(random_tree(rng, 1).to_json())
        assert other is not compiled_from_json(text)

    def test_adopted_compiled_form_is_used(self):
        tree = WhiskerTree()
        compiled = CompiledTree.from_tree(tree)
        tree.adopt_compiled(compiled)
        assert tree.compiled() is compiled


class TestMemoryClipping:
    @given(st.floats(min_value=-10.0, max_value=100.0,
                     allow_nan=False),
           st.floats(min_value=-10.0, max_value=100.0,
                     allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_signals_into_matches_vector(self, ewma, ratio):
        memory = Memory()
        memory.rec_ewma = ewma
        memory.slow_rec_ewma = ewma / 2.0
        memory.send_ewma = ewma * 3.0
        memory.rtt_ratio = ratio
        scratch = [0.0] * 4
        memory.signals_into(scratch)
        assert tuple(scratch) == memory.vector()

    def test_clip_caps_stay_inside_every_whisker_box(self):
        memory = Memory()
        memory.rec_ewma = 1e9
        memory.slow_rec_ewma = -5.0
        memory.send_ewma = 16.0
        memory.rtt_ratio = 0.5
        vector = memory.vector()
        assert vector == (CAPS[0], 0.0, CAPS[2], 1.0)
        tree = WhiskerTree()
        assert tree.lookup(vector) is tree.whiskers()[0]


class TestControllerRecordingModes:
    @staticmethod
    def _ack(now, rtt=0.1):
        from repro.protocols.base import AckContext
        return AckContext(now=now, rtt_sample=rtt, newly_acked=1,
                          cum_ack=0, echo_sent_at=now - rtt,
                          receiver_time=now, in_recovery=False,
                          base_rtt=rtt)

    def test_shared_stats_defer_until_merge(self):
        tree = WhiskerTree(default_action=Action(1.0, 1.0, 0.001))
        stats = tree.compiled().new_stats()
        cc = RemyCCController(tree, record_usage=True, usage_stats=stats)
        cc.on_ack(self._ack(1.0))
        cc.on_ack(self._ack(1.1))
        assert tree.whiskers()[0].use_count == 0   # not merged yet
        assert stats.counts[0] == 2
        stats.merge_into(tree)
        assert tree.whiskers()[0].use_count == 2

    def test_write_through_equals_shared_stats(self):
        """Both recording modes leave identical stats on the tree."""
        def drive(cc):
            now = 0.0
            for _ in range(40):
                now += 0.01
                cc.on_ack(self._ack(now))

        tree_a = WhiskerTree(default_action=Action(1.0, 1.0, 0.001))
        tree_a.whiskers()[0].record_use((0.05, 0.05, 0.05, 1.1))
        tree_a.split(tree_a.whiskers()[0])
        tree_b = tree_a.clone()

        drive(RemyCCController(tree_a, record_usage=True))
        stats = tree_b.compiled().new_stats()
        drive(RemyCCController(tree_b, record_usage=True,
                               usage_stats=stats))
        stats.merge_into(tree_b)
        for a, b in zip(tree_a.whiskers(), tree_b.whiskers()):
            assert a.use_count == b.use_count
            assert a.signal_sums == b.signal_sums
