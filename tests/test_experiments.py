"""Smoke tests for the experiment modules at micro scale.

These verify the experiment plumbing (sweeps, result containers,
format_table) rather than paper shapes — the benchmark harness owns the
shape assertions.  Tao-dependent experiments substitute a tiny
hand-built rule table so the tests do not depend on trained assets.
"""

import pytest

from repro.core.scale import Scale
from repro.experiments import (calibration, diversity, link_speed,
                               multiplexing, rtt, signals, structure,
                               tcp_awareness)
from repro.experiments.api import FAKE_TREE

MICRO = Scale(duration_s=3.0, packet_budget=4_000, min_duration_s=2.0,
              n_seeds=1, sweep_points=2)


def fake_trees(*names):
    return {name: FAKE_TREE for name in names}


class TestCalibration:
    def test_runs_and_formats(self):
        result = calibration.run(scale=MICRO, tree=FAKE_TREE)
        assert set(result.points) == {"tao", "cubic", "cubic_sfqcodel"}
        assert result.omniscient_throughput_bps == pytest.approx(24e6)
        text = calibration.format_table(result)
        assert "omniscient" in text and "cubic" in text


class TestLinkSpeed:
    def test_sweep_is_log_spaced(self):
        speeds = link_speed.sweep_speeds(4)
        assert speeds[0] == pytest.approx(1.0)
        assert speeds[-1] == pytest.approx(1000.0)
        ratios = [b / a for a, b in zip(speeds, speeds[1:])]
        assert all(r == pytest.approx(ratios[0]) for r in ratios)
        with pytest.raises(ValueError):
            link_speed.sweep_speeds(1)

    def test_runs_with_fake_trees(self):
        result = link_speed.run(
            scale=MICRO, trees=fake_trees(*link_speed.TAO_RANGES))
        schemes = {p.scheme for p in result.points}
        assert "omniscient" in schemes and "cubic" in schemes
        assert len(result.series("tao_2x")) == 2
        # in-range bookkeeping matches the declared ranges
        for point in result.series("tao_2x"):
            expected = 22.0 <= point.speed_mbps <= 44.0
            assert point.in_training_range == expected
        assert "Figure 2" in link_speed.format_table(result)


class TestMultiplexing:
    def test_sweep_unique_and_covers_range(self):
        counts = multiplexing.sweep_senders(5)
        assert counts[0] == 1 and counts[-1] == 100
        assert len(set(counts)) == len(counts)

    def test_runs_with_fake_trees(self):
        result = multiplexing.run(
            scale=MICRO, trees=fake_trees(*multiplexing.TAO_RANGES))
        cases = {p.buffer_case for p in result.points}
        assert cases == {"5bdp", "nodrop"}
        assert "Figure 3" in multiplexing.format_table(result)


class TestRtt:
    def test_sweep_includes_150(self):
        assert 150.0 in rtt.sweep_rtts(4)
        assert 150.0 in rtt.sweep_rtts(7)
        assert rtt.sweep_rtts(5)[0] == pytest.approx(1.0)

    def test_runs_with_fake_trees(self):
        result = rtt.run(scale=MICRO, trees=fake_trees(*rtt.TAO_RANGES))
        exact = result.series("tao_rtt_150")
        assert any(p.in_training_range for p in exact)
        assert "Figure 4" in rtt.format_table(result)


class TestStructure:
    def test_pairs_cover_boundaries(self):
        pairs = structure.sweep_speed_pairs(3)
        assert (10.0, 10.0) in pairs
        assert any(faster == 100.0 for _, faster in pairs)

    def test_runs_with_fake_trees(self):
        result = structure.run(
            scale=MICRO,
            trees=fake_trees("tao_structure_one", "tao_structure_two"))
        assert result.points and result.omniscient
        assert 0.0 <= abs(result.simplification_penalty()) <= 1.0
        assert "Figure 6" in structure.format_table(result)


class TestTcpAwareness:
    def test_runs_with_fake_trees(self):
        result = tcp_awareness.run(
            scale=MICRO,
            trees=fake_trees("tao_tcp_naive", "tao_tcp_aware"))
        assert set(result.cells) == set(tcp_awareness.CELLS)
        assert result.tao_point("naive_homogeneous").n_samples >= 1
        assert "newreno" in result.cells["newreno_only"].by_kind
        assert "Figure 7" in tcp_awareness.format_table(result)

    def test_queue_trace(self):
        trace = tcp_awareness.run_queue_trace(
            tree=FAKE_TREE, duration_s=4.0, tcp_on_at=1.0,
            tcp_off_at=2.0)
        assert len(trace.times) == len(trace.queue_packets)
        assert trace.tcp_interval == (1.0, 2.0)
        assert trace.mean_queue(0.0, 4.0) >= 0.0


class TestDiversity:
    def test_runs_with_fake_trees(self):
        result = diversity.run(
            scale=MICRO,
            trees=fake_trees("tao_delta_tpt_naive",
                             "tao_delta_del_naive",
                             "tao_delta_tpt_coopt",
                             "tao_delta_del_coopt"))
        assert ("coopt_mixed", "learner") in result.points
        assert ("coopt_mixed", "peer") in result.points
        assert result.throughput_mbps("coopt_mixed", "learner") >= 0
        assert "Figure 9" in diversity.format_table(result)


class TestSignals:
    def test_runs_with_fake_trees(self):
        from repro.remy.memory import SIGNAL_NAMES
        trees = {"tao_calibration": FAKE_TREE}
        trees.update(fake_trees(*(f"tao_knockout_{s}"
                                  for s in SIGNAL_NAMES)))
        result = signals.run(scale=MICRO, trees=trees)
        assert len(result.objective_by_variant) == 5
        # Identical trees: every knockout scores exactly like the full
        # variant (common random numbers), so all drops are zero.
        for signal in SIGNAL_NAMES:
            assert result.drop(signal) == pytest.approx(0.0)
        assert len(result.ranking()) == 4
        assert "section 3.4" in signals.format_table(result)
