"""Pool-reuse safety: recycled packets must be indistinguishable from
fresh ones, under arbitrary acquire/release interleavings.

The zero-allocation packet path hands the same objects around the
sender -> queue -> receiver -> (in-place ACK) -> sender cycle, so a
single stale slot surviving :meth:`Packet.reset` would silently couple
unrelated packets.  These tests fuzz the lifecycle:

* packets are acquired with random header fields, *fully dirtied* (every
  mutable slot overwritten, including the in-place ACK transform and
  routing/queue scribbles), released in random order, and re-acquired —
  each handout must equal a from-scratch construction, slot by slot;
* the pool never allocates while it holds a free packet (the reuse
  guarantee the allocation bench relies on).
"""

import random

from hypothesis import given, settings, strategies as st

from repro.sim.packet import ACK_SIZE_BYTES, Packet, PacketPool

#: Every slot on Packet; a new slot must be added to reset() and to the
#: dirtying below, and this list makes forgetting that loud.
ALL_SLOTS = list(Packet.__slots__)


def snapshot(packet):
    return {name: getattr(packet, name) for name in ALL_SLOTS}


def dirty(packet, rng):
    """Scribble on every mutable slot, as real transit would (and worse)."""
    if rng.random() < 0.5:
        # The in-place ACK transform is the common mid-life mutation.
        packet.into_ack(rng.randrange(1_000_000), rng.random() * 1e3)
    packet.route = tuple("fake-link" for _ in range(rng.randrange(4)))
    packet.hop = rng.randrange(8)
    packet.enqueued_at = rng.random() * 1e3
    packet.sfq_deficit = rng.randrange(-5000, 5000)
    packet.is_retransmission = bool(rng.getrandbits(1))
    packet.first_sent_at = rng.random() * 1e3
    packet.receiver_time = rng.random() * 1e3
    packet.echo_first_sent_at = rng.random() * 1e3


def random_header(rng):
    return dict(
        flow_id=rng.randrange(64),
        seq=rng.randrange(1 << 20),
        size_bytes=rng.choice([40, 576, 1500]),
        sent_at=rng.random() * 1e3,
        first_sent_at=rng.choice([None, rng.random() * 1e3]),
        is_retransmission=bool(rng.getrandbits(1)),
    )


class TestResetStateSafety:
    def test_slot_list_is_exhaustive(self):
        """reset() must initialize literally every slot."""
        packet = Packet(0, 0, 1500, 0.0)
        for name in ALL_SLOTS:
            assert hasattr(packet, name)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_fuzzed_interleavings_never_leak_state(self, seed):
        rng = random.Random(seed)
        pool = PacketPool()
        live = []
        for _ in range(200):
            action = rng.random()
            if action < 0.55 or not live:
                header = random_header(rng)
                packet = pool.acquire(**header)
                # The handout must equal a from-scratch construction,
                # slot for slot, no matter what its previous life did.
                assert snapshot(packet) == snapshot(Packet(**header))
                dirty(packet, rng)
                live.append(packet)
            else:
                victim = live.pop(rng.randrange(len(live)))
                dirty(victim, rng)
                pool.release(victim)
        assert pool.allocated + pool.reused >= 1
        assert len(pool) == pool.released - pool.reused

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_pool_reuses_before_allocating(self, seed):
        """A non-empty free list always serves the next acquire."""
        rng = random.Random(seed)
        pool = PacketPool()
        live = []
        for _ in range(150):
            free_before = len(pool)
            allocated_before = pool.allocated
            if rng.random() < 0.5 or not live:
                live.append(pool.acquire(**random_header(rng)))
                if free_before > 0:
                    assert pool.allocated == allocated_before
                    assert len(pool) == free_before - 1
                else:
                    assert pool.allocated == allocated_before + 1
            else:
                pool.release(live.pop(rng.randrange(len(live))))
                assert len(pool) == free_before + 1


class TestInPlaceAck:
    def test_into_ack_matches_make_ack(self):
        """The in-place transform equals the allocating constructor —
        every slot, so a divergence in transit leftovers (retransmit
        flag, first-send stamp) cannot creep in unpinned."""
        data = Packet(flow_id=3, seq=17, size_bytes=1500, sent_at=2.5,
                      first_sent_at=1.25, is_retransmission=True)
        reference = snapshot(Packet.make_ack(data, ack_seq=18, now=4.0))
        ack = data.into_ack(18, 4.0)
        assert ack is data
        assert snapshot(ack) == reference
        assert ack.is_ack
        assert ack.ack_seq == 18
        assert ack.size_bytes == ACK_SIZE_BYTES
        assert ack.echo_sent_at == 2.5
        assert ack.echo_first_sent_at == 1.25
        assert ack.receiver_time == 4.0
        assert ack.sent_at == 4.0

    def test_echo_read_before_sent_at_overwritten(self):
        """The transform must echo the *data* timestamps, not its own."""
        data = Packet(flow_id=0, seq=5, size_bytes=1500, sent_at=7.0)
        ack = data.into_ack(6, 9.0)
        assert ack.echo_sent_at == 7.0      # not 9.0
        assert ack.sent_at == 9.0


class TestEndToEndRecycling:
    def test_saturated_flow_runs_on_a_handful_of_packets(self):
        """Steady state recycles: allocations stay near the pipe depth,
        orders of magnitude below the packet count."""
        from repro.core.scenario import NetworkConfig
        from repro.experiments.common import build_simulation

        config = NetworkConfig(
            link_speeds_mbps=(10.0,), rtt_ms=50.0,
            sender_kinds=("newreno",), mean_on_s=100.0, mean_off_s=0.0,
            buffer_bdp=2.0)
        handle = build_simulation(config, seed=1)
        result = handle.run(10.0)
        pool = handle.built.network.pool
        delivered = result.flows[0].packets_delivered
        assert delivered > 1000
        # The eager design allocated 2 packets per delivery (data +
        # ACK); the pool must beat that by far more than the gate's 5x.
        assert pool.allocated < delivered / 10
        assert pool.reused > delivered
        # Conservation: handouts not yet released are exactly the
        # distinct objects minus the free list — no object is both
        # live and free, none vanished.
        live = pool.allocated + pool.reused - pool.released
        assert 0 <= live <= pool.allocated
        assert len(pool) == pool.allocated - live

    def test_drops_are_released_back(self):
        """Packets that die at a full buffer return to the free list."""
        from repro.core.scenario import NetworkConfig
        from repro.experiments.common import build_simulation

        config = NetworkConfig(
            link_speeds_mbps=(5.0,), rtt_ms=100.0,
            sender_kinds=("newreno", "newreno"), mean_on_s=100.0,
            mean_off_s=0.0, buffer_bdp=1.0)
        handle = build_simulation(config, seed=1)
        handle.run(10.0)
        bottleneck = handle.built.link("A", "B")
        assert bottleneck.queue.stats.dropped > 0
        pool = handle.built.network.pool
        # Released >= drops: every dropped packet came back (plus every
        # consumed ACK).
        assert pool.released >= bottleneck.queue.stats.dropped
