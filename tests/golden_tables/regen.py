#!/usr/bin/env python
"""Regenerate the committed parity tables.

Each file is one experiment module's ``format_table`` output at
``PARITY_SCALE`` with the stand-in rule table (the same fake tree
``run_experiments.py --fake-taos`` uses).  ``tests/test_table_parity.py``
asserts the current code reproduces these files byte-for-byte, so any
refactor of the experiment layer that shifts a table — cell grid, seed
assignment, scoring, or formatting — fails loudly.

Regenerate (only after convincing yourself a diff is intentional)::

    PYTHONPATH=src python tests/golden_tables/regen.py
"""

from __future__ import annotations

import pathlib
import sys

from repro.core.scale import Scale
from repro.experiments import (calibration, diversity, link_speed,
                               multiplexing, rtt, signals, structure,
                               tcp_awareness)
from repro.experiments.api import FAKE_TREE
from repro.remy.memory import SIGNAL_NAMES

#: Small enough for the tier-1 suite, big enough to exercise multiple
#: seeds and sweep points.
PARITY_SCALE = Scale(duration_s=3.0, packet_budget=6_000,
                     min_duration_s=2.0, n_seeds=2, sweep_points=3)

_ASSETS = {
    "link_speed": tuple(link_speed.TAO_RANGES),
    "multiplexing": tuple(multiplexing.TAO_RANGES),
    "rtt": tuple(rtt.TAO_RANGES),
    "structure": ("tao_structure_one", "tao_structure_two"),
    "tcp_awareness": ("tao_tcp_naive", "tao_tcp_aware"),
    "diversity": ("tao_delta_tpt_naive", "tao_delta_del_naive",
                  "tao_delta_tpt_coopt", "tao_delta_del_coopt"),
    "signals": ("tao_calibration",) + tuple(
        f"tao_knockout_{signal}" for signal in SIGNAL_NAMES),
}

#: Every table the parity suite pins (regenerated into <name>.txt).
TABLE_NAMES = ("calibration",) + tuple(_ASSETS)


def _fakes(name):
    return {asset: FAKE_TREE for asset in _ASSETS[name]}


def tables() -> dict:
    """name -> format_table text at PARITY_SCALE with fake trees."""
    out = {}
    out["calibration"] = calibration.format_table(
        calibration.run(scale=PARITY_SCALE, tree=FAKE_TREE))
    for name, module in (("link_speed", link_speed),
                         ("multiplexing", multiplexing),
                         ("rtt", rtt),
                         ("structure", structure),
                         ("tcp_awareness", tcp_awareness),
                         ("diversity", diversity),
                         ("signals", signals)):
        out[name] = module.format_table(
            module.run(scale=PARITY_SCALE, trees=_fakes(name)))
    return out


def main() -> int:
    directory = pathlib.Path(__file__).resolve().parent
    for name, text in tables().items():
        path = directory / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
