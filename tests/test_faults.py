"""Chaos suite: supervised execution under injected faults.

The contract under test (docs/EXECUTION.md "Failure semantics"): for
*any* seeded fault schedule (:mod:`repro.exec.faults`), every task the
supervised executor completes is bitwise-identical to a fault-free
serial run — transient faults are absorbed by retry/bisection, poison
tasks are isolated and quarantined in at most ``log2(chunk)``
resubmissions, hangs are bounded by per-task deadlines, and a store
written under chaos resumes cleanly with zero re-executions.
"""

import argparse
import dataclasses
import math

import pytest

from repro.core.scenario import NetworkConfig
from repro.exec import (ProcessPoolExecutor, ResultStore, RetryPolicy,
                        SerialExecutor, SimTask, StoreExecutor,
                        SupervisedExecutor, TaskFailedError, cache_key,
                        executor_for)
from repro.exec import faults
from repro.exec.faults import (FAULTS_ENV, FaultInjected, FaultInjector,
                               FaultPlan, _uniform, injector_from_env)
from repro.exec.supervise import (add_fault_tolerance_arguments,
                                  policy_from_args)
from repro.remy.action import Action
from repro.remy.tree import WhiskerTree

CONFIG = NetworkConfig(
    link_speeds_mbps=(10.0,), rtt_ms=100.0,
    sender_kinds=("learner", "cubic"), mean_on_s=1.0, mean_off_s=1.0,
    buffer_bdp=5.0)

TREE = WhiskerTree(default_action=Action(0.8, 4.0, 0.002))

#: Retry semantics unchanged, waiting compressed to test scale.
FAST = RetryPolicy(max_retries=2, backoff_base_s=0.01,
                   backoff_max_s=0.05)


def small_batch(n=4, duration=2.0):
    return [SimTask.build(CONFIG, trees={"learner": TREE},
                          seed=1 + k, duration_s=duration)
            for k in range(n)]


def flows_key(results):
    """A comparable projection of every float the tables consume."""
    return [[(f.kind, f.delivered_bytes, f.on_time_s, f.mean_delay_s,
              f.packets_delivered, f.packets_sent, f.retransmissions)
             for f in out.run.flows] for out in results]


def install(monkeypatch, plan):
    monkeypatch.setenv(FAULTS_ENV, plan.to_json())


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(seed=7, p_exception=0.25, p_kill=0.5,
                         p_hang=0.125, p_corrupt=1.0, hang_s=9.0,
                         max_attempt=None, raise_keys=("a",),
                         kill_keys=("b", "c"), hang_keys=("d",))
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_non_object_plan_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.from_json("[1, 2]")

    def test_draws_deterministic_and_independent(self):
        draw = _uniform(3, "kill", "somekey")
        assert 0.0 <= draw < 1.0
        assert draw == _uniform(3, "kill", "somekey")
        assert draw != _uniform(3, "exception", "somekey")
        assert draw != _uniform(4, "kill", "somekey")

    def test_targeted_keys_fire_on_every_attempt(self):
        injector = FaultInjector(FaultPlan(raise_keys=("poison",)))
        for attempt in (0, 1, 7):
            with pytest.raises(FaultInjected):
                injector.on_task("poison", attempt)
        injector.on_task("innocent", 0)   # untargeted: no fault

    def test_probabilistic_faults_are_transient_by_default(self):
        injector = FaultInjector(FaultPlan(p_exception=1.0))
        with pytest.raises(FaultInjected):
            injector.on_task("anykey", 0)
        injector.on_task("anykey", 1)     # max_attempt=0: retry is clean

    def test_corruption_draw_matches_probability(self):
        always = FaultInjector(FaultPlan(p_corrupt=1.0))
        never = FaultInjector(FaultPlan(p_corrupt=0.0))
        assert always.on_put("k") is not None
        assert never.on_put("k") is None

    def test_network_fields_round_trip(self):
        plan = FaultPlan(seed=9, p_conn_drop=0.5, p_frame_corrupt=0.25,
                         p_delay=1.0, p_partition=0.125, delay_s=0.7,
                         partition_s=42.0, conn_drop_keys=("a",),
                         frame_corrupt_keys=("b",), delay_keys=("c",),
                         partition_keys=("d", "e"))
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_on_wire_precedence_and_targeting(self):
        injector = FaultInjector(FaultPlan(
            conn_drop_keys=("drop",), frame_corrupt_keys=("corrupt",),
            partition_keys=("split",), delay_keys=("slow",)))
        assert injector.on_wire("drop", 3) == "conn-drop"
        assert injector.on_wire("corrupt", 0) == "frame-corrupt"
        assert injector.on_wire("split", 1) == "partition"
        assert injector.on_wire("slow", 0) == "delay"
        assert injector.on_wire("innocent", 0) is None
        # Several kinds armed at once: the most disruptive wins.
        everything = FaultInjector(FaultPlan(
            p_conn_drop=1.0, p_frame_corrupt=1.0, p_delay=1.0,
            p_partition=1.0))
        assert everything.on_wire("anykey", 0) == "conn-drop"

    def test_on_wire_probabilistic_faults_are_transient(self):
        injector = FaultInjector(FaultPlan(p_conn_drop=1.0))
        assert injector.on_wire("anykey", 0) == "conn-drop"
        assert injector.on_wire("anykey", 1) is None  # retry is clean
        # Targeted keys are persistent poison: every attempt fires.
        poison = FaultInjector(FaultPlan(conn_drop_keys=("p",)))
        assert all(poison.on_wire("p", attempt) == "conn-drop"
                   for attempt in (0, 1, 9))


class TestInjectorGating:
    """In-task faults arm only inside worker processes: the serial
    reference run must stay fault-free even with a plan installed."""

    def test_inert_outside_workers(self, monkeypatch):
        install(monkeypatch, FaultPlan(p_exception=1.0,
                                       max_attempt=None))
        assert injector_from_env() is None

    def test_armed_in_marked_processes(self, monkeypatch):
        plan = FaultPlan(seed=5, p_kill=0.5)
        install(monkeypatch, plan)
        monkeypatch.setattr(faults, "_IS_WORKER", True)
        injector = injector_from_env()
        assert injector is not None and injector.plan == plan

    def test_unreadable_plan_fails_loudly(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "{not json")
        monkeypatch.setattr(faults, "_IS_WORKER", True)
        with pytest.raises(ValueError):
            injector_from_env()

    def test_serial_run_immune(self, monkeypatch):
        tasks = small_batch(2)
        clean = SerialExecutor().run_batch(tasks)
        install(monkeypatch, FaultPlan(p_exception=1.0,
                                       max_attempt=None))
        assert flows_key(SerialExecutor().run_batch(tasks)) \
            == flows_key(clean)


class TestSupervisedClean:
    def test_matches_serial_bitwise_and_reusable(self):
        tasks = small_batch(4)
        serial = SerialExecutor().run_batch(tasks)
        with SupervisedExecutor(jobs=2, policy=FAST) as sup:
            first = sup.run_batch(tasks)
            second = sup.run_batch(tasks)   # worker reuse across batches
        assert flows_key(first) == flows_key(serial)
        assert flows_key(second) == flows_key(serial)
        assert [out.run.seed for out in first] == [1, 2, 3, 4]
        assert sup.stats.worker_deaths == 0
        assert sup.stats.retries == 0

    def test_executor_for_builds_supervised_pool(self):
        executor = executor_for(2, policy=FAST)
        try:
            assert isinstance(executor, SupervisedExecutor)
            assert isinstance(executor, ProcessPoolExecutor)
            assert executor.policy is FAST
        finally:
            executor.close()

    def test_empty_batch(self):
        with SupervisedExecutor(jobs=2, policy=FAST) as sup:
            assert sup.run_batch([]) == []


class TestTransientFaults:
    def test_exceptions_retried_to_success(self, monkeypatch):
        tasks = small_batch(4)
        serial = SerialExecutor().run_batch(tasks)
        install(monkeypatch, FaultPlan(seed=1, p_exception=1.0))
        with SupervisedExecutor(jobs=2, policy=FAST) as sup:
            out = sup.run_batch(tasks)
        assert flows_key(out) == flows_key(serial)
        assert sup.stats.retries == len(tasks)   # one retry each
        assert sup.stats.quarantined == 0

    def test_worker_kills_absorbed_by_bisection(self, monkeypatch):
        tasks = small_batch(6)
        serial = SerialExecutor().run_batch(tasks)
        install(monkeypatch, FaultPlan(seed=2, p_kill=1.0))
        with SupervisedExecutor(jobs=2, chunk_size=3,
                                policy=FAST) as sup:
            out = sup.run_batch(tasks)
        assert flows_key(out) == flows_key(serial)
        # Each 3-task chunk dies once on attempt 0, then its bisected
        # halves run clean at attempt 1 (transient: max_attempt=0).
        assert sup.stats.worker_deaths == 2
        assert sup.stats.bisections == 2
        assert sup.stats.quarantined == 0


class TestPoisonQuarantine:
    def test_bisection_isolates_poison_within_log2_chunk(
            self, monkeypatch):
        chunk = 8
        tasks = small_batch(chunk)
        serial = SerialExecutor().run_batch(tasks)
        poison = 3
        install(monkeypatch,
                FaultPlan(kill_keys=(cache_key(tasks[poison]),)))
        policy = dataclasses.replace(FAST, on_failure="quarantine")
        with SupervisedExecutor(jobs=2, chunk_size=chunk,
                                policy=policy) as sup:
            out = sup.run_batch(tasks)
        failure = out[poison].failure
        assert failure is not None and failure.kind == "worker-death"
        assert "bisection" in failure.message
        assert failure.resubmissions <= math.log2(chunk)
        assert sup.stats.quarantined == 1
        assert sup.stats.bisections >= 1
        # Every innocent chunk-mate completed, bitwise equal to serial.
        rest = [i for i in range(chunk) if i != poison]
        assert all(out[i].failure is None for i in rest)
        assert flows_key([out[i] for i in rest]) \
            == flows_key([serial[i] for i in rest])

    def test_exhausted_exception_quarantined_with_context(
            self, monkeypatch):
        tasks = small_batch(3)
        serial = SerialExecutor().run_batch(tasks)
        poison = 1
        install(monkeypatch,
                FaultPlan(raise_keys=(cache_key(tasks[poison]),)))
        policy = dataclasses.replace(FAST, max_retries=1,
                                     on_failure="quarantine")
        with SupervisedExecutor(jobs=2, chunk_size=1,
                                policy=policy) as sup:
            out = sup.run_batch(tasks)
        failure = out[poison].failure
        assert failure is not None and failure.kind == "exception"
        assert failure.attempts == 2            # initial + max_retries
        assert failure.error_type == "FaultInjected"
        assert "FaultInjected" in failure.traceback
        rest = [i for i in (0, 2)]
        assert flows_key([out[i] for i in rest]) \
            == flows_key([serial[i] for i in rest])

    def test_raise_mode_aborts_with_fingerprint(self, monkeypatch):
        tasks = small_batch(3)
        poison_key = cache_key(tasks[1])
        install(monkeypatch, FaultPlan(raise_keys=(poison_key,)))
        policy = dataclasses.replace(FAST, max_retries=1)
        with SupervisedExecutor(jobs=2, chunk_size=1,
                                policy=policy) as sup:
            with pytest.raises(TaskFailedError) as excinfo:
                sup.run_batch(tasks)
        assert excinfo.value.failures[0][0] == poison_key
        assert poison_key[:12] in str(excinfo.value)


#: Deadline machinery compressed to test scale: flat 0.6 s budgets.
HANG_POLICY = RetryPolicy(max_retries=1, task_timeout_s=0.6,
                          timeout_slack_s=0.3, backoff_base_s=0.01,
                          backoff_max_s=0.05)


class TestTimeouts:
    def test_hang_degrades_to_serial_fallback(self, monkeypatch):
        tasks = small_batch(3)
        serial = SerialExecutor().run_batch(tasks)
        install(monkeypatch,
                FaultPlan(hang_keys=(cache_key(tasks[1]),), hang_s=60.0))
        with SupervisedExecutor(jobs=2, chunk_size=1,
                                policy=HANG_POLICY) as sup:
            out = sup.run_batch(tasks)
        # Hung twice, killed twice, then ran undisturbed in-process
        # (the supervisor is not a worker, so nothing is injected).
        assert flows_key(out) == flows_key(serial)
        assert sup.stats.timeouts == 2
        assert sup.stats.serial_fallbacks == 1

    def test_hang_without_fallback_quarantines(self, monkeypatch):
        tasks = small_batch(3)
        serial = SerialExecutor().run_batch(tasks)
        install(monkeypatch,
                FaultPlan(hang_keys=(cache_key(tasks[1]),), hang_s=60.0))
        policy = dataclasses.replace(HANG_POLICY, serial_fallback=False,
                                     on_failure="quarantine")
        with SupervisedExecutor(jobs=2, chunk_size=1,
                                policy=policy) as sup:
            out = sup.run_batch(tasks)
        failure = out[1].failure
        assert failure is not None and failure.kind == "timeout"
        assert failure.attempts == 2
        assert flows_key([out[0], out[2]]) \
            == flows_key([serial[0], serial[2]])

    def test_derived_budget_scales_with_task_cost(self):
        policy = RetryPolicy()
        short, = small_batch(1, duration=2.0)
        longer, = small_batch(1, duration=8.0)
        assert policy.timeout_for(longer) > policy.timeout_for(short) \
            >= policy.min_timeout_s
        flat = RetryPolicy(task_timeout_s=12.5)
        assert flat.timeout_for(longer) == 12.5

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(backoff_base_s=0.25, backoff_factor=2.0,
                             backoff_max_s=1.0)
        delays = [policy.backoff_for(n) for n in (1, 2, 3, 4)]
        assert delays == [0.25, 0.5, 1.0, 1.0]


class CountingExecutor(SerialExecutor):
    """Serial executor that counts how many tasks actually execute."""

    def __init__(self):
        self.executed = 0

    def run_iter(self, tasks):
        tasks = list(tasks)
        self.executed += len(tasks)
        yield from super().run_iter(tasks)


class TestStoreUnderChaos:
    """Satellite: crash-resume under chaos.  A store written while
    workers are being killed and shards corrupted must resume cleanly
    — zero re-executions, bitwise-equal results."""

    def test_chaos_store_resumes_with_zero_reexecution(
            self, tmp_path, monkeypatch):
        tasks = small_batch(6)
        serial = SerialExecutor().run_batch(tasks)
        install(monkeypatch, FaultPlan(seed=9, p_kill=1.0,
                                       p_exception=0.3, p_corrupt=1.0))
        store = tmp_path / "chaos.store"
        with SupervisedExecutor(jobs=2, chunk_size=3,
                                policy=FAST) as sup:
            out = StoreExecutor(sup, store=store).run_batch(tasks)
        assert flows_key(out) == flows_key(serial)

        # Every put was followed by an injected torn-write garbage line;
        # readers must degrade them to misses, verify must count them.
        stats = ResultStore(store).verify()
        assert stats.distinct == len(tasks)
        assert stats.corrupt == len(tasks)

        monkeypatch.delenv(FAULTS_ENV)
        counting = CountingExecutor()
        resumed = StoreExecutor(counting, store=store)
        again = resumed.run_batch(tasks)
        assert counting.executed == 0           # everything served
        assert resumed.hits == len(tasks)
        assert flows_key(again) == flows_key(serial)

        # gc compacts the injected garbage away.
        assert ResultStore(store).gc() == len(tasks)
        assert ResultStore(store).verify().corrupt == 0

    def test_quarantined_poison_skipped_on_resume(
            self, tmp_path, monkeypatch):
        tasks = small_batch(4)
        serial = SerialExecutor().run_batch(tasks)
        poison = 2
        poison_key = cache_key(tasks[poison])
        install(monkeypatch, FaultPlan(raise_keys=(poison_key,)))
        policy = dataclasses.replace(FAST, max_retries=1,
                                     on_failure="quarantine")
        store = tmp_path / "poison.store"
        with SupervisedExecutor(jobs=2, chunk_size=1,
                                policy=policy) as sup:
            first = StoreExecutor(sup, store=store,
                                  skip_quarantined=True).run_batch(tasks)
        assert first[poison].failure is not None
        recorded = ResultStore(store).get_quarantine(poison_key)
        assert recorded is not None and recorded.kind == "exception"
        assert ResultStore(store).stats().quarantined == 1

        # Resume with faults off: the known-poison fingerprint is served
        # as its recorded failure, nothing re-executes.
        monkeypatch.delenv(FAULTS_ENV)
        counting = CountingExecutor()
        resumed = StoreExecutor(counting, store=store,
                                skip_quarantined=True)
        again = resumed.run_batch(tasks)
        assert counting.executed == 0
        assert resumed.quarantined == 1
        assert again[poison].failure == recorded
        rest = [i for i in range(4) if i != poison]
        assert flows_key([again[i] for i in rest]) \
            == flows_key([serial[i] for i in rest])

        # Without skip_quarantined the poison is retried for real — and
        # with the plan gone it now succeeds, matching serial.
        counting = CountingExecutor()
        retried = StoreExecutor(counting,
                                store=store).run_batch(tasks)
        assert counting.executed == 1
        assert flows_key([retried[poison]]) \
            == flows_key([serial[poison]])


class TestGoldenUnderChaos:
    def test_digests_unchanged_under_transient_chaos(self, monkeypatch):
        """The acceptance criterion: under an injected fault schedule,
        completed results digest to the same pinned goldens as the
        fault-free serial run."""
        from test_golden_traces import GOLDEN, SCENARIOS, result_digest

        names = ["calibration", "link_speed", "rtt", "tcp_awareness"]
        tasks = [SCENARIOS[name] for name in names]
        install(monkeypatch, FaultPlan(seed=11, p_kill=1.0,
                                       p_exception=0.5))
        with SupervisedExecutor(jobs=2, chunk_size=2,
                                policy=FAST) as sup:
            results = sup.run_batch(tasks)
        assert {name: result_digest(result)
                for name, result in zip(names, results)} \
            == {name: GOLDEN[name] for name in names}


def _load_script(name):
    """Import a scripts/*.py file (scripts/ is not a package)."""
    import importlib.util
    from pathlib import Path

    path = Path(__file__).resolve().parents[1] / "scripts" / name
    spec = importlib.util.spec_from_file_location(name[:-3], path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _tiny_quick_scale(monkeypatch):
    from repro.core import scale as scale_module
    from repro.core.scale import Scale

    tiny = Scale(duration_s=2.0, packet_budget=3_000,
                 min_duration_s=2.0, n_seeds=2, sweep_points=2)
    monkeypatch.setitem(scale_module.NAMED_SCALES, "quick", tiny)


class TestScriptsUnderChaos:
    """The CI chaos job's assertions, runnable locally: a sweep under
    injected worker kills produces the same report as a clean serial
    run, and resuming its store afterwards changes nothing."""

    def test_sweep_under_kills_matches_clean_run_and_resumes(
            self, tmp_path, monkeypatch, capsys):
        _tiny_quick_scale(monkeypatch)
        run_experiments = _load_script("run_experiments.py")
        args = ["--scale", "quick", "--only", "calibration",
                "--fake-taos"]
        store = tmp_path / "store"
        ref, out = tmp_path / "ref.md", tmp_path / "out.md"

        # Fault-free serial reference, no store.
        assert run_experiments.main(args + ["-o", str(ref)]) == 0
        # The same sweep, parallel, with every first-attempt chunk's
        # worker SIGKILLed, persisting into a store.
        install(monkeypatch, FaultPlan(seed=21, p_kill=1.0))
        assert run_experiments.main(
            args + ["--jobs", "2", "--store", str(store),
                    "-o", str(out)]) == 0
        assert out.read_text() == ref.read_text()
        # Resume with faults off: byte-identical again, store healthy.
        monkeypatch.delenv(FAULTS_ENV)
        assert run_experiments.main(
            args + ["--jobs", "2", "--store", str(store), "--resume",
                    "-o", str(out)]) == 0
        assert out.read_text() == ref.read_text()
        assert run_experiments.main(
            ["store", "verify", "--store", str(store), "--strict"]) == 0

    def test_quarantine_mode_exits_nonzero_on_poison(
            self, tmp_path, monkeypatch, capsys):
        _tiny_quick_scale(monkeypatch)
        run_experiments = _load_script("run_experiments.py")
        # Every attempt of every task raises: with zero retries, the
        # whole grid is poison — the run must finish (quarantine, not
        # hang or crash) and exit non-zero.
        install(monkeypatch, FaultPlan(p_exception=1.0,
                                       max_attempt=None))
        code = run_experiments.main(
            ["--scale", "quick", "--only", "calibration", "--fake-taos",
             "--jobs", "2", "--max-retries", "0",
             "--on-failure", "quarantine"])
        assert code == 3
        captured = capsys.readouterr()
        assert "FAILED" in captured.out
        assert "failed on poison tasks" in captured.err


class TestCLI:
    def test_policy_from_args_round_trip(self):
        parser = argparse.ArgumentParser()
        add_fault_tolerance_arguments(parser)
        policy = policy_from_args(parser.parse_args([]))
        assert policy == RetryPolicy()
        policy = policy_from_args(parser.parse_args(
            ["--max-retries", "5", "--task-timeout", "30",
             "--on-failure", "quarantine"]))
        assert policy.max_retries == 5
        assert policy.task_timeout_s == 30.0
        assert policy.on_failure == "quarantine"

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(on_failure="explode")
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
