"""Link dynamics: schedules, the dynamic link path, and the adversary.

Four layers, matching the feature's plumbing:

* the declarative layer — :class:`LinkSchedule` / :class:`DynamicsSpec`
  validation, timelines, dict round-trips, and the outage-token
  encoding shared by the CLI and the adversarial search;
* the config layer — ``NetworkConfig.dynamics`` riding the to_dict /
  from_dict / fingerprint machinery *without* perturbing dynamics-free
  fingerprints (the store back-compat contract);
* the simulator layer — the re-priceable serialization path: mid-packet
  rate changes, hold vs drop blackout policies, jitter, reordering, and
  the driver's deterministic RNG streams;
* the search layer — :class:`AdversarialAxis` validation and a tiny
  end-to-end hill-climb.
"""

import math
import random

import pytest

from repro.core.scale import Scale
from repro.core.scenario import NetworkConfig
from repro.exec import SimTask, run_sim_task
from repro.experiments.adversary import AdversarialAxis
from repro.experiments.api import AdhocBase, Axis, adhoc_spec
from repro.sim.dynamics import (DynamicsDriver, DynamicsSpec,
                                LinkSchedule, format_outage_token,
                                parse_outage_token)
from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.packet import Packet


def make_packet(seq=0, size=1500):
    return Packet(flow_id=0, seq=seq, size_bytes=size, sent_at=0.0)


def collecting_link(sim, rate_bps, delay_s=0.0):
    link = Link(sim, rate_bps, delay_s)
    deliveries = []
    link.deliver = lambda pkt: deliveries.append((sim.now, pkt.seq))
    return link, deliveries


# ----------------------------------------------------------------------
# Declarative layer
# ----------------------------------------------------------------------
class TestLinkScheduleValidation:
    @pytest.mark.parametrize("kwargs", [
        {"rate_steps": ((1.0, 5.0), (0.5, 3.0))},   # unsorted
        {"rate_steps": ((1.0, 5.0), (1.0, 3.0))},   # duplicate time
        {"rate_steps": ((-0.5, 5.0),)},             # negative time
        {"rate_steps": ((1.0, -2.0),)},             # negative rate
        {"rate_steps": ((1.0, math.inf),)},         # non-finite rate
        {"outages": ((1.0, 0.5),)},                 # stop <= start
        {"outages": ((1.0, 1.0),)},                 # empty window
        {"outages": ((0.0, 1.0), (0.5, 2.0))},      # overlapping
        {"outages": ((-1.0, 0.5),)},                # negative start
        {"outages": ((0.0, math.inf),)},            # infinite window
        {"outage_policy": "teleport"},              # unknown policy
        {"jitter_ms": -1.0},                        # negative jitter
        {"jitter_ms": 5.0},                         # jitter, no period
        {"reorder_prob": 1.5},                      # prob out of range
        {"reorder_prob": 0.1},                      # reorder, no extra
        {"rate_steps": ((1.0,),)},                  # not a pair
    ])
    def test_rejects(self, kwargs):
        with pytest.raises(ValueError):
            LinkSchedule(**kwargs)

    def test_empty_schedule_is_empty(self):
        schedule = LinkSchedule()
        assert schedule.is_empty
        assert not schedule.varies_rate
        assert schedule.packet_only_reason() is None

    def test_packet_only_reasons_name_the_feature(self):
        jitter = LinkSchedule(jitter_ms=5.0, jitter_period_s=0.05)
        assert "jitter" in jitter.packet_only_reason()
        reorder = LinkSchedule(reorder_prob=0.1, reorder_extra_ms=5.0)
        assert "reordering" in reorder.packet_only_reason()
        outage = LinkSchedule(outages=((0.5, 1.0),))
        assert outage.packet_only_reason() is None

    def test_timeline_merges_trace_and_outages(self):
        schedule = LinkSchedule(rate_steps=((1.0, 5.0),),
                                outages=((0.5, 0.8), (2.0, 2.5)))
        # base 10 Mbps: down at 0.5, back to base at 0.8, trace step to
        # 5 Mbps at 1.0, down at 2.0, back to the *trace-current* 5 Mbps
        # at 2.5.
        assert schedule.timeline(10e6) == [
            (0.5, 0.0), (0.8, 10e6), (1.0, 5e6), (2.0, 0.0), (2.5, 5e6)]

    def test_timeline_elides_no_op_changes(self):
        # An outage starting while the trace already sits at 0 emits no
        # change points at all.
        schedule = LinkSchedule(rate_steps=((1.0, 0.0),),
                                outages=((2.0, 3.0),))
        assert schedule.timeline(8e6) == [(1.0, 0.0), (3.0, 0.0)] or \
            schedule.timeline(8e6) == [(1.0, 0.0)]


class TestDynamicsSpec:
    def test_needs_a_schedule(self):
        with pytest.raises(ValueError):
            DynamicsSpec(links=())

    def test_entries_must_be_schedules(self):
        with pytest.raises(ValueError):
            DynamicsSpec(links=({"outages": []},))

    def test_single_schedule_broadcasts(self):
        spec = DynamicsSpec.outage(((0.5, 1.0),))
        assert spec.schedule_for(0) is spec.schedule_for(1)

    def test_dict_round_trip(self):
        spec = DynamicsSpec(links=(
            LinkSchedule(rate_steps=((1.0, 4.0),),
                         outages=((2.0, 2.5),), outage_policy="drop"),
            LinkSchedule(jitter_ms=8.0, jitter_period_s=0.1,
                         reorder_prob=0.02, reorder_extra_ms=6.0)))
        assert DynamicsSpec.from_dict(spec.to_dict()) == spec
        assert DynamicsSpec.from_dict(None) is None


class TestOutageTokens:
    @pytest.mark.parametrize("token", ["none", "", "off", "  none  "])
    def test_static_tokens(self, token):
        assert parse_outage_token(token) == ()

    def test_round_trip(self):
        windows = ((0.5, 1.0), (2.0, 2.5), (3.25, 4.0))
        token = format_outage_token(windows)
        assert token == "0.5-1+2-2.5+3.25-4"
        assert parse_outage_token(token) == windows
        assert format_outage_token(()) == "none"

    @pytest.mark.parametrize("token", ["0.5", "a-b", "1-2-3", "1+2"])
    def test_bad_tokens_name_the_offender(self, token):
        with pytest.raises(ValueError) as err:
            parse_outage_token(token)
        assert repr(token) in str(err.value)


# ----------------------------------------------------------------------
# Config layer: NetworkConfig + fingerprints
# ----------------------------------------------------------------------
def _config(dynamics=None, mean_on_s=1.0, mean_off_s=1.0):
    return NetworkConfig(
        link_speeds_mbps=(10.0,), rtt_ms=100.0,
        sender_kinds=("newreno", "newreno"),
        mean_on_s=mean_on_s, mean_off_s=mean_off_s,
        buffer_bdp=5.0, dynamics=dynamics)


class TestNetworkConfigDynamics:
    def test_to_dict_omits_dynamics_when_unset(self):
        """Dynamics-free config dicts must stay byte-identical to the
        pre-dynamics format, so every existing store shard still hits."""
        assert "dynamics" not in _config().to_dict()

    def test_round_trip(self):
        spec = DynamicsSpec.outage(((0.5, 1.0),), policy="drop")
        config = _config(dynamics=spec)
        restored = NetworkConfig.from_dict(config.to_dict())
        assert restored.dynamics == spec
        assert NetworkConfig.from_dict(_config().to_dict()).dynamics \
            is None

    def test_dynamics_free_fingerprint_unchanged(self):
        """A task built from a config with dynamics=None fingerprints
        exactly like one built from a pre-dynamics config dict."""
        legacy = {key: value for key, value in
                  _config().to_dict().items() if key != "dynamics"}
        with_field = SimTask.build(_config(), seed=1, duration_s=2.0)
        from_legacy = SimTask.build(legacy, seed=1, duration_s=2.0)
        assert with_field.fingerprint() == from_legacy.fingerprint()

    def test_dynamics_changes_the_fingerprint(self):
        static = SimTask.build(_config(), seed=1, duration_s=2.0)
        dynamic = SimTask.build(
            _config(dynamics=DynamicsSpec.outage(((0.5, 1.0),))),
            seed=1, duration_s=2.0)
        assert static.fingerprint() != dynamic.fingerprint()

    def test_link_count_mismatch_rejected(self):
        spec = DynamicsSpec(links=(LinkSchedule(), LinkSchedule(),
                                   LinkSchedule()))
        with pytest.raises(ValueError, match="link schedule"):
            _config(dynamics=spec)

    def test_wrong_type_rejected(self):
        with pytest.raises(ValueError, match="DynamicsSpec"):
            _config(dynamics={"links": []})

    # -- satellite 2: the p_on guard -----------------------------------
    def test_p_on_both_zero_is_always_on(self):
        config = _config(mean_on_s=0.0, mean_off_s=0.0)
        assert config.p_on == 1.0
        assert config.always_on

    def test_p_on_normal(self):
        config = _config(mean_on_s=1.0, mean_off_s=3.0)
        assert config.p_on == pytest.approx(0.25)
        assert not config.always_on

    def test_zero_on_with_nonzero_off_rejected(self):
        with pytest.raises(ValueError, match="mean_on_s"):
            _config(mean_on_s=0.0, mean_off_s=1.0)

    def test_negative_on_rejected(self):
        with pytest.raises(ValueError):
            _config(mean_on_s=-1.0)

    def test_always_on_senders_deliver_continuously(self):
        """The degenerate on/off config runs as 100%-duty senders on
        both backends (and the fluid schedule draws no RNG)."""
        config = _config(mean_on_s=0.0, mean_off_s=0.0)
        packet = run_sim_task(
            SimTask.build(config, seed=1, duration_s=2.0)).run
        fluid = run_sim_task(
            SimTask.build(config, seed=1, duration_s=2.0,
                          backend="fluid")).run
        for run in (packet, fluid):
            for flow in run.flows:
                assert flow.delivered_bytes > 0
                assert flow.on_time_s == pytest.approx(2.0)


# ----------------------------------------------------------------------
# Simulator layer: the dynamic link path
# ----------------------------------------------------------------------
class TestDynamicLink:
    def test_rate_change_reprices_in_flight_packet(self):
        """1500 B at 1 Mbps is 12 ms; halving the rate at 6 ms leaves
        6000 bits to serialize at 0.5 Mbps -> done at 18 ms."""
        sim = Simulator()
        link, deliveries = collecting_link(sim, 1e6)
        link.enable_dynamics()
        link.send(make_packet(0))
        sim.schedule_at(0.006, link.set_rate, 0.5e6)
        sim.run(until=1.0)
        assert deliveries == [(pytest.approx(0.018), 0)]

    def test_outage_suspends_and_resumes_serialization(self):
        """Bits already served survive a blackout: 6 ms served, 100 ms
        down, remaining 6 ms after recovery -> delivery at 112 ms."""
        sim = Simulator()
        link, deliveries = collecting_link(sim, 1e6)
        link.enable_dynamics()
        link.send(make_packet(0))
        sim.schedule_at(0.006, link.set_rate, 0.0)
        sim.schedule_at(0.106, link.set_rate, 1e6)
        sim.run(until=1.0)
        assert link.down is False
        assert deliveries == [(pytest.approx(0.112), 0)]

    def test_hold_policy_queues_arrivals_during_blackout(self):
        sim = Simulator()
        link, deliveries = collecting_link(sim, 1e6)
        link.enable_dynamics()
        sim.schedule_at(0.0, link.set_rate, 0.0)
        sim.schedule_at(0.001, link.send, make_packet(0))
        sim.schedule_at(0.002, link.send, make_packet(1))
        sim.schedule_at(0.100, link.set_rate, 1e6)
        sim.run(until=1.0)
        assert [seq for _, seq in deliveries] == [0, 1]
        assert deliveries[0][0] == pytest.approx(0.112)
        assert deliveries[1][0] == pytest.approx(0.124)

    def test_drop_policy_discards_arrivals_during_blackout(self):
        sim = Simulator()
        link, deliveries = collecting_link(sim, 1e6)
        link.enable_dynamics()
        link.down_policy = "drop"
        accepted = []
        sim.schedule_at(0.0, link.set_rate, 0.0)
        sim.schedule_at(0.001,
                        lambda: accepted.append(link.send(make_packet(0))))
        sim.schedule_at(0.100, link.set_rate, 1e6)
        sim.schedule_at(0.200,
                        lambda: accepted.append(link.send(make_packet(1))))
        sim.run(until=1.0)
        assert accepted == [False, True]
        assert link.queue.stats.dropped == 1
        assert [seq for _, seq in deliveries] == [1]

    def test_zero_rate_link_constructs_down(self):
        sim = Simulator()
        link = Link(sim, 0.0, 0.0)
        assert link.down
        assert link.transmission_time(1500) == math.inf
        # ... and set_rate brings it to life.
        deliveries = []
        link.deliver = lambda pkt: deliveries.append(sim.now)
        link.send(make_packet(0))
        sim.schedule_at(0.5, link.set_rate, 12e6)
        sim.run(until=1.0)
        assert deliveries == [pytest.approx(0.5 + 0.001)]

    def test_enable_dynamics_refused_mid_transmission(self):
        sim = Simulator()
        link, _ = collecting_link(sim, 1e6)
        link.send(make_packet(0))
        with pytest.raises(RuntimeError):
            link.enable_dynamics()

    def test_nominal_rate_survives_set_rate(self):
        sim = Simulator()
        link, _ = collecting_link(sim, 8e6)
        link.set_rate(1e6)
        assert link.rate_bps == 1e6
        assert link.nominal_rate_bps == 8e6
        assert link.base_transmission_time(1000) == pytest.approx(0.001)

    def test_reordering_lets_a_later_packet_overtake(self):
        """With reorder_prob 1 every packet draws extra delay; a large
        enough spread lets packet 1 overtake packet 0."""
        sim = Simulator()
        link = Link(sim, 100e6, 0.010)
        order = []
        link.deliver = lambda pkt: order.append(pkt.seq)
        rng = random.Random(5)
        # Find a seed offset where the first draw exceeds the second by
        # more than the 0.12 ms serialization gap - deterministic once
        # found, but don't hand-pick magic RNG output in the test.
        link.set_reordering(1.0, 0.050, rng)
        for seq in range(8):
            link.send(make_packet(seq))
        sim.run(until=1.0)
        assert sorted(order) == list(range(8))
        assert order != list(range(8))


class TestDynamicsDriver:
    def _run(self, spec, seed=0, duration=1.0, rate=1e6):
        sim = Simulator()
        link, deliveries = collecting_link(sim, rate)
        DynamicsDriver(sim, [link], spec, seed=seed).start()
        for seq in range(40):
            sim.schedule_at(seq * 0.02, link.send, make_packet(seq))
        sim.run(until=duration)
        return link, deliveries

    def test_outage_spec_blacks_out_the_window(self):
        spec = DynamicsSpec.outage(((0.2, 0.6),))
        _, deliveries = self._run(spec)
        gaps = [t for t, _ in deliveries if 0.25 < t < 0.6]
        assert gaps == []          # nothing crosses mid-blackout
        assert any(t >= 0.6 for t, _ in deliveries)

    def test_jitter_is_deterministic_per_seed(self):
        spec = DynamicsSpec.jitter(5.0, period_s=0.05)
        first = self._run(spec, seed=3)[1]
        again = self._run(spec, seed=3)[1]
        other = self._run(spec, seed=4)[1]
        assert first == again
        assert first != other

    def test_rate_trace_spec_drives_set_rate(self):
        spec = DynamicsSpec.rate_trace(((0.5, 4.0),))
        link, _ = self._run(spec, rate=1e6)
        assert link.rate_bps == 4e6
        assert link.nominal_rate_bps == 1e6

    def test_empty_schedules_leave_links_static(self):
        sim = Simulator()
        link, _ = collecting_link(sim, 1e6)
        DynamicsDriver(sim, [link],
                       DynamicsSpec(links=(LinkSchedule(),))).start()
        assert link._fast        # fast path intact: dynamics never armed


# ----------------------------------------------------------------------
# Search layer: the adversarial axis
# ----------------------------------------------------------------------
class TestAdversarialAxis:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdversarialAxis(windows=1)
        with pytest.raises(ValueError):
            AdversarialAxis(windows=4, active=4)
        with pytest.raises(ValueError):
            AdversarialAxis(windows=4, active=0)
        with pytest.raises(ValueError):
            AdversarialAxis(iters=-1)

    def test_token_merges_adjacent_windows(self):
        axis = AdversarialAxis(windows=8, active=3)
        assert axis._token(frozenset({1, 2, 5}), 0.5) == "0.5-1.5+2.5-3"

    def test_needs_static_base(self):
        axis = AdversarialAxis(windows=4, active=1, iters=0)
        with pytest.raises(ValueError, match="static base"):
            axis.resolve("newreno", base=AdhocBase(outage="0-1"))

    def test_tiny_search_degrades_the_victim(self):
        """End-to-end: a 2-iteration hill-climb over a short newreno run
        finds an outage pattern strictly worse than static, evaluates
        deterministically, and emits a replayable axis."""
        scale = Scale(duration_s=2.0, packet_budget=10_000,
                      min_duration_s=2.0, n_seeds=1, sweep_points=3)
        axis = AdversarialAxis(windows=4, active=1, iters=2, seed=0)
        base = AdhocBase(link_mbps=8.0, rtt_ms=100.0)
        result = axis.resolve("newreno", base=base, scale=scale)
        assert result.best_score < result.static_score
        assert result.axis.values == ("none", result.best_token)
        # The token replays through the ordinary axis machinery.
        spec = adhoc_spec([Axis.of("outage", (result.best_token,))],
                          ["newreno"], base=base, bound=False)
        cell = spec.build("newreno", {"outage": result.best_token})
        assert cell.config.dynamics.links[0].outages \
            == parse_outage_token(result.best_token)
        # Same seed, same trajectory.
        replay = AdversarialAxis(windows=4, active=1, iters=2, seed=0) \
            .resolve("newreno", base=base, scale=scale)
        assert replay.history == result.history

    def test_summary_names_the_pattern(self):
        scale = Scale(duration_s=2.0, packet_budget=10_000,
                      min_duration_s=2.0, n_seeds=1, sweep_points=3)
        axis = AdversarialAxis(windows=4, active=1, iters=0, seed=0)
        result = axis.resolve("newreno",
                              base=AdhocBase(link_mbps=8.0), scale=scale)
        text = result.summary()
        assert "static" in text and result.best_token in text
