"""Tests for the repro.exec execution layer.

The load-bearing property is the determinism contract: every executor
returns bitwise-identical results for the same task batch, so training
(common random numbers) and the experiment tables cannot depend on how
the work was scheduled.
"""

import dataclasses

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scale import Scale
from repro.core.scenario import NetworkConfig, ScenarioRange
from repro.exec import (CachingExecutor, Executor, ProcessPoolExecutor,
                        SerialExecutor, SimTask, cache_key,
                        executor_for, pack_chunks, run_batch,
                        run_sim_task, task_cost)
from repro.remy.action import Action
from repro.remy.evaluator import EvalSettings, TreeEvaluator
from repro.remy.optimizer import OptimizerSettings, RemyOptimizer
from repro.remy.tree import WhiskerTree

CONFIG = NetworkConfig(
    link_speeds_mbps=(10.0,), rtt_ms=100.0,
    sender_kinds=("learner", "cubic"), mean_on_s=1.0, mean_off_s=1.0,
    buffer_bdp=5.0)

TREE = WhiskerTree(default_action=Action(0.8, 4.0, 0.002))


def small_batch(n=4, duration=2.0):
    return [SimTask.build(CONFIG, trees={"learner": TREE},
                          seed=1 + k, duration_s=duration)
            for k in range(n)]


class TestSimTask:
    def test_build_from_objects(self):
        task = small_batch(1)[0]
        assert task.config == CONFIG.to_dict()
        assert task.trees == (("learner", TREE.to_json()),)

    def test_fingerprint_stable(self):
        a, b = small_batch(1)[0], small_batch(1)[0]
        assert a.fingerprint() == b.fingerprint()

    @pytest.mark.parametrize("change", [
        {"seed": 99},
        {"duration_s": 3.5},
        {"record_usage": True},
        {"trees": ()},
        {"backend": "fluid"},
        {"config": NetworkConfig(link_speeds_mbps=(11.0,),
                                 rtt_ms=100.0,
                                 sender_kinds=("learner", "cubic"),
                                 buffer_bdp=5.0).to_dict()},
    ])
    def test_fingerprint_covers_every_field(self, change):
        base = small_batch(1)[0]
        changed = dataclasses.replace(base, **change)
        assert changed.fingerprint() != base.fingerprint()

    def test_fingerprint_format_pinned(self):
        """The fingerprint IS the cache key, in memory and on disk.

        This literal pins the format: if it changes, every existing
        result store silently misses on all its entries, so a change
        here must come with a SCHEMA_VERSION bump in repro.exec.store
        (and a very good reason).
        """
        task = small_batch(1)[0]
        assert task.fingerprint() \
            == "0d7308ddd6a34eafb01e6c55162d02c436ea3d5b"
        assert cache_key(task) == task.fingerprint()

    def test_packet_backend_fingerprint_is_backcompat(self):
        """``backend="packet"`` is omitted from the hashed payload, so
        every store written before the field existed still hits; a
        fluid task must never collide with its packet twin."""
        base = small_batch(1)[0]
        explicit = dataclasses.replace(base, backend="packet")
        assert base.backend == "packet"
        assert explicit.fingerprint() == base.fingerprint()
        fluid = dataclasses.replace(base, backend="fluid")
        assert fluid.fingerprint() != base.fingerprint()

    def test_backend_validated(self):
        with pytest.raises(ValueError):
            SimTask.build(CONFIG, trees=None, seed=1, duration_s=1.0,
                          backend="quantum")

    def test_run_sim_task_returns_flow_stats(self):
        out = run_sim_task(small_batch(1)[0])
        assert len(out.run.flows) == 2
        assert out.run.duration_s == 2.0
        assert out.usage_counts == []   # record_usage off

    def test_usage_recorded_when_asked(self):
        task = dataclasses.replace(small_batch(1)[0], record_usage=True)
        out = run_sim_task(task)
        assert len(out.usage_counts) == len(TREE)
        assert sum(out.usage_counts) > 0


def flows_key(results):
    """A comparable projection of every float the tables consume."""
    return [[(f.kind, f.delivered_bytes, f.on_time_s, f.mean_delay_s,
              f.packets_delivered, f.packets_sent, f.retransmissions)
             for f in out.run.flows] for out in results]


class TestExecutorEquivalence:
    def test_serial_matches_pool_bitwise(self):
        """The determinism contract: scheduling cannot change results."""
        tasks = small_batch(4)
        serial = SerialExecutor().run_batch(tasks)
        with ProcessPoolExecutor(jobs=2) as pool:
            pooled = pool.run_batch(tasks)
        assert flows_key(serial) == flows_key(pooled)

    def test_pool_is_reusable_across_batches(self):
        with ProcessPoolExecutor(jobs=2) as pool:
            first = pool.run_batch(small_batch(2))
            second = pool.run_batch(small_batch(2))
        assert flows_key(first) == flows_key(second)

    def test_results_in_task_order(self):
        tasks = small_batch(5)
        with ProcessPoolExecutor(jobs=2, chunk_size=1) as pool:
            results = pool.run_batch(tasks)
        assert [out.run.seed for out in results] == [1, 2, 3, 4, 5]

    def test_progress_called_per_task(self):
        seen = []
        SerialExecutor().run_batch(
            small_batch(3), progress=lambda done, n: seen.append((done, n)))
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_run_batch_jobs_flag(self):
        tasks = small_batch(3)
        assert flows_key(run_batch(tasks)) \
            == flows_key(run_batch(tasks, jobs=2))

    def test_executor_for(self):
        assert isinstance(executor_for(None), SerialExecutor)
        assert isinstance(executor_for(1), SerialExecutor)
        pool = executor_for(2)
        assert isinstance(pool, ProcessPoolExecutor)
        pool.close()   # never started: close is a safe no-op

    def test_bad_jobs_rejected(self):
        with pytest.raises(ValueError):
            ProcessPoolExecutor(jobs=0)
        with pytest.raises(ValueError):
            executor_for(-8)   # a "--jobs -8" typo must not run serial

    def test_run_seeds_jobs_matches_serial(self):
        from repro.core.scale import Scale as _Scale
        from repro.experiments.common import (run_seeds,
                                              run_seeds_parallel)
        scale = _Scale(duration_s=2.0, packet_budget=3_000,
                       min_duration_s=2.0, n_seeds=2)
        serial = run_seeds(CONFIG, trees={"learner": TREE}, scale=scale)
        pooled = run_seeds(CONFIG, trees={"learner": TREE},
                           scale=scale, jobs=2)
        assert [[f.delivered_bytes for f in r.flows] for r in serial] \
            == [[f.delivered_bytes for f in r.flows] for r in pooled]
        # the legacy twin survives as a deprecated alias
        with pytest.deprecated_call():
            legacy = run_seeds_parallel(CONFIG, trees={"learner": TREE},
                                        scale=scale, jobs=2)
        assert [[f.delivered_bytes for f in r.flows] for r in legacy] \
            == [[f.delivered_bytes for f in r.flows] for r in serial]


def _ideal_makespan(costs, n_chunks):
    """Lower bound no partition into n_chunks chunks can beat."""
    return max(sum(costs) / max(min(n_chunks, len(costs)), 1),
               max(costs))


class TestChunkPacking:
    """Property tests for the cost-aware chunk packer.

    The pool's default dispatch packs tasks into chunks by expected
    cost; these pin the two load-bearing guarantees — exact cover
    (every task runs exactly once) and bounded makespan (no straggler
    chunk more than 2x the ideal, even for adversarial cost mixes).
    """

    @given(costs=st.lists(
               st.floats(min_value=0.0, max_value=1e9,
                         allow_nan=False, allow_infinity=False),
               max_size=200),
           n_chunks=st.integers(min_value=1, max_value=64))
    @settings(max_examples=200, deadline=None)
    def test_chunks_cover_all_tasks_exactly_once(self, costs, n_chunks):
        chunks = pack_chunks(costs, n_chunks)
        flat = [i for chunk in chunks for i in chunk]
        assert sorted(flat) == list(range(len(costs)))
        assert len(chunks) <= n_chunks
        assert all(chunks)                       # no empty chunk

    @given(costs=st.lists(
               st.floats(min_value=0.0, max_value=1e9,
                         allow_nan=False, allow_infinity=False),
               min_size=1, max_size=200),
           n_chunks=st.integers(min_value=1, max_value=64))
    @settings(max_examples=200, deadline=None)
    def test_makespan_within_2x_ideal(self, costs, n_chunks):
        chunks = pack_chunks(costs, n_chunks)
        worst = max(sum(costs[i] for i in chunk) for chunk in chunks)
        ideal = _ideal_makespan(costs, n_chunks)
        assert worst <= 2.0 * ideal + 1e-6 * max(ideal, 1.0)

    def test_adversarial_mix_does_not_straggle(self):
        """One 1000x task among dwarfs: count-based chunking would put
        it in a chunk with ~25 others; cost packing must isolate it."""
        costs = [1000.0] + [1.0] * 99
        chunks = pack_chunks(costs, 4)
        heavy = next(c for c in chunks if 0 in c)
        assert sum(costs[i] for i in heavy) <= 2 * _ideal_makespan(
            costs, 4)
        assert heavy == [0]                      # LPT isolates it

    def test_deterministic(self):
        costs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        assert pack_chunks(costs, 3) == pack_chunks(list(costs), 3)

    def test_task_cost_tracks_duration_and_rate(self):
        slow, = small_batch(1, duration=2.0)
        slower, = small_batch(1, duration=4.0)
        assert task_cost(slower) == 2 * task_cost(slow)
        fast = SimTask.build(
            NetworkConfig(link_speeds_mbps=(100.0,), rtt_ms=100.0,
                          sender_kinds=("learner",), buffer_bdp=5.0),
            trees={"learner": TREE}, seed=1, duration_s=2.0)
        assert task_cost(fast) == 10 * task_cost(slow)

    def test_pool_cost_packing_preserves_determinism(self):
        """Heterogeneous durations exercise the cost-packed dispatch
        path; results must still match serial bitwise, in task order."""
        tasks = [SimTask.build(CONFIG, trees={"learner": TREE},
                               seed=1 + k, duration_s=duration)
                 for k, duration in enumerate((4.0, 2.0, 3.0, 2.0, 2.0))]
        serial = SerialExecutor().run_batch(tasks)
        with ProcessPoolExecutor(jobs=2) as pool:
            pooled = pool.run_batch(tasks)
        assert flows_key(serial) == flows_key(pooled)
        assert [out.run.seed for out in pooled] == [1, 2, 3, 4, 5]


class TestRunIter:
    def test_serial_streams_in_order(self):
        tasks = small_batch(3)
        seen = list(SerialExecutor().run_iter(tasks))
        assert [i for i, _ in seen] == [0, 1, 2]
        assert flows_key([r for _, r in seen]) \
            == flows_key(SerialExecutor().run_batch(tasks))

    def test_pool_streams_every_task_once(self):
        tasks = small_batch(4)
        with ProcessPoolExecutor(jobs=2) as pool:
            seen = dict(pool.run_iter(tasks))
        assert sorted(seen) == [0, 1, 2, 3]
        assert flows_key([seen[i] for i in range(4)]) \
            == flows_key(SerialExecutor().run_batch(tasks))

    def test_default_run_iter_wraps_run_batch(self):
        caching = CachingExecutor(SerialExecutor())
        tasks = small_batch(2)
        seen = dict(caching.run_iter(tasks))
        assert sorted(seen) == [0, 1]


class CountingExecutor(Executor):
    """Serial executor that counts how many tasks actually execute."""

    def __init__(self):
        self.executed = 0

    def run_batch(self, tasks, progress=None):
        tasks = list(tasks)
        self.executed += len(tasks)
        return SerialExecutor().run_batch(tasks, progress=progress)


class TestCachingExecutor:
    def test_hits_skip_execution(self):
        inner = CountingExecutor()
        caching = CachingExecutor(inner)
        tasks = small_batch(3)
        first = caching.run_batch(tasks)
        assert inner.executed == 3
        second = caching.run_batch(tasks)
        assert inner.executed == 3          # nothing re-ran
        assert flows_key(first) == flows_key(second)
        assert caching.hits == 3 and caching.misses == 3

    def test_duplicates_within_batch_run_once(self):
        inner = CountingExecutor()
        caching = CachingExecutor(inner)
        task = small_batch(1)[0]
        results = caching.run_batch([task, task, task])
        assert inner.executed == 1
        assert flows_key(results[:1]) == flows_key(results[1:2])

    def test_different_tasks_not_conflated(self):
        caching = CachingExecutor(CountingExecutor())
        short, = small_batch(1, duration=2.0)
        longer, = small_batch(1, duration=3.0)
        out_short, out_long = caching.run_batch([short, longer])
        assert out_short.run.duration_s == 2.0
        assert out_long.run.duration_s == 3.0

    def test_progress_spans_submitted_batch_not_misses(self):
        caching = CachingExecutor(CountingExecutor())
        tasks = small_batch(3)
        caching.run_batch(tasks[:2])        # warm two entries
        seen = []
        caching.run_batch(tasks,
                          progress=lambda d, n: seen.append((d, n)))
        assert seen == [(3, 3)]             # 2 hits + 1 executed
        seen = []
        caching.run_batch(tasks,
                          progress=lambda d, n: seen.append((d, n)))
        assert seen == [(3, 3)]             # fully cached still fires

    def test_clear_forgets(self):
        inner = CountingExecutor()
        caching = CachingExecutor(inner)
        tasks = small_batch(2)
        caching.run_batch(tasks)
        caching.clear()
        caching.run_batch(tasks)
        assert inner.executed == 4


TINY = EvalSettings(
    n_configs=2, sim_seeds=(1,),
    scale=Scale(duration_s=4.0, packet_budget=6_000, min_duration_s=2.0))

RANGE = ScenarioRange(link_speed_mbps=(8.0, 16.0), rtt_ms=(100.0, 100.0),
                      num_senders=(1, 2), buffer_bdp=5.0)


class TestEvaluatorOnExecutors:
    def test_serial_and_pool_scores_bitwise_identical(self):
        tree = WhiskerTree(default_action=Action(0.8, 4.0, 0.002))
        serial = TreeEvaluator(RANGE, TINY).evaluate(tree)
        with ProcessPoolExecutor(jobs=2) as pool:
            pooled = TreeEvaluator(RANGE, TINY,
                                   executor=pool).evaluate(tree)
        assert serial.score == pooled.score
        assert serial.per_config_scores == pooled.per_config_scores

    def test_scale_change_does_not_reuse_stale_scores(self):
        """Regression: the old cache was keyed only by tree fingerprint,
        so changing ``EvalSettings.scale`` on a reused evaluator
        returned scores simulated at the *old* scale."""
        tree = WhiskerTree(default_action=Action(0.8, 4.0, 0.002))
        evaluator = TreeEvaluator(RANGE, TINY)
        first = evaluator.evaluate_batch([tree])[0]
        # Same evaluator object, rescaled budget: tasks differ, so the
        # cache must miss and the score must be recomputed.
        evaluator.settings = EvalSettings(
            n_configs=2, sim_seeds=(1,),
            scale=Scale(duration_s=8.0, packet_budget=12_000,
                        min_duration_s=4.0))
        before = evaluator.evaluations
        rescaled = evaluator.evaluate_batch([tree])[0]
        assert evaluator.evaluations > before
        assert rescaled != first

    def test_clear_cache_bounds_memory_not_hits(self):
        tree = WhiskerTree(default_action=Action(0.8, 4.0, 0.002))
        evaluator = TreeEvaluator(RANGE, TINY)
        evaluator.evaluate_batch([tree])
        count = evaluator.evaluations
        assert evaluator.cached_tasks > 0
        evaluator.clear_cache()
        assert evaluator.cached_tasks == 0
        assert evaluator.evaluations == count   # counter survives

    def test_trained_tree_identical_with_and_without_pool(self):
        """Regression for the optimizer: pooled training must follow
        the exact same search trajectory as serial training."""
        settings = OptimizerSettings(generations=1, max_action_steps=2,
                                     neighbor_scales=(1.0,))
        serial_tree, serial_log = RemyOptimizer(
            RANGE, TINY, settings).train()
        with ProcessPoolExecutor(jobs=2) as pool:
            pooled_tree, pooled_log = RemyOptimizer(
                RANGE, TINY, settings, executor=pool).train()
        assert serial_tree.to_json() == pooled_tree.to_json()
        assert serial_log.scores == pooled_log.scores


class TestDefaultJobs:
    """default_jobs sizes the pool from the CPUs the scheduler will
    actually grant (affinity mask), not the host's core count."""

    def test_respects_cpu_affinity(self, monkeypatch):
        from repro.exec import executors
        monkeypatch.setattr(executors.os, "sched_getaffinity",
                            lambda pid: {0, 1, 2}, raising=False)
        assert executors.default_jobs() == 2

    def test_affinity_failure_falls_back_to_cpu_count(self, monkeypatch):
        import multiprocessing as mp

        from repro.exec import executors

        def boom(pid):
            raise OSError("affinity unavailable")

        monkeypatch.setattr(executors.os, "sched_getaffinity", boom,
                            raising=False)
        assert executors.default_jobs() == max(mp.cpu_count() - 1, 1)

    def test_single_cpu_still_one_worker(self, monkeypatch):
        from repro.exec import executors
        monkeypatch.setattr(executors.os, "sched_getaffinity",
                            lambda pid: {0}, raising=False)
        assert executors.default_jobs() == 1


class TestPoolLifecycle:
    """The pool is recycled after a mid-batch worker exception and
    close() stays safe under repetition / interruption."""

    def test_pool_recycled_after_worker_exception(self):
        bad = dataclasses.replace(small_batch(1)[0],
                                  trees=(("learner", "{broken"),))
        pool = ProcessPoolExecutor(jobs=2)
        try:
            with pytest.raises(Exception):
                pool.run_batch([bad])
            assert pool._pool is None         # broken pool torn down
            good = pool.run_batch(small_batch(2))   # fresh pool spawned
            assert flows_key(good) \
                == flows_key(SerialExecutor().run_batch(small_batch(2)))
        finally:
            pool.close()

    def test_close_idempotent_and_detaches_first(self):
        pool = ProcessPoolExecutor(jobs=2)
        pool.run_batch(small_batch(1))
        assert pool._pool is not None
        pool.close()
        # Detached before teardown: a ^C landing inside terminate()
        # leaves no half-closed pool behind, and closing again is a
        # clean no-op.
        assert pool._pool is None
        pool.close()

    def test_supervised_close_idempotent_and_reaps(self):
        import multiprocessing

        from repro.exec import SupervisedExecutor

        def supervised_children():
            return [p for p in multiprocessing.active_children()
                    if p.name.startswith("repro-supervised-")]

        pool = SupervisedExecutor(2)
        pool.run_batch(small_batch(2, duration=1.0))
        assert supervised_children()
        pool.close()
        assert not supervised_children()     # no leaked workers
        pool.close()                          # double close: clean no-op
        # Close-then-reuse: a fresh batch respawns workers, and a
        # second close reaps them again.
        good = pool.run_batch(small_batch(1, duration=1.0))
        assert good[0].failure is None
        pool.close()
        assert not supervised_children()

    def test_raising_progress_still_reaps_workers(self):
        """_collect closes the run_iter generator deterministically, so
        an exploding progress callback cannot leave the supervision
        loop suspended with busy workers (they are reaped at close,
        not whenever GC finds the generator)."""
        import multiprocessing

        from repro.exec import SupervisedExecutor

        class Boom(Exception):
            pass

        def progress(done, total):
            raise Boom

        pool = SupervisedExecutor(2)
        try:
            with pytest.raises(Boom):
                pool.run_batch(small_batch(3, duration=1.0),
                               progress=progress)
            # The executor is still usable after the consumer blew up.
            good = pool.run_batch(small_batch(1, duration=1.0))
            assert good[0].failure is None
        finally:
            pool.close()
        assert not [p for p in multiprocessing.active_children()
                    if p.name.startswith("repro-supervised-")]
