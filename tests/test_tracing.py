"""Unit tests for queue traces (the Figure 8 instrumentation)."""

import numpy as np
import pytest

from repro.sim.packet import Packet
from repro.sim.queues import DropTailQueue
from repro.sim.tracing import QueueTrace


def make_packet(seq):
    return Packet(flow_id=0, seq=seq, size_bytes=1500, sent_at=0.0)


class TestQueueTrace:
    def test_records_every_event(self):
        queue = DropTailQueue()
        trace = QueueTrace(queue)
        queue.enqueue(make_packet(0), 1.0)
        queue.enqueue(make_packet(1), 2.0)
        queue.dequeue(3.0)
        assert trace.times == [1.0, 2.0, 3.0]
        assert trace.lengths == [1, 2, 1]
        assert len(trace) == 3

    def test_refuses_double_attachment(self):
        queue = DropTailQueue()
        QueueTrace(queue)
        with pytest.raises(ValueError):
            QueueTrace(queue)

    def test_drop_times(self):
        queue = DropTailQueue(capacity_packets=1)
        trace = QueueTrace(queue)
        queue.enqueue(make_packet(0), 1.0)
        queue.enqueue(make_packet(1), 2.0)   # dropped
        queue.enqueue(make_packet(2), 3.0)   # dropped
        assert trace.drop_times() == [2.0, 3.0]

    def test_sample_zero_order_hold(self):
        queue = DropTailQueue()
        trace = QueueTrace(queue)
        queue.enqueue(make_packet(0), 1.0)
        queue.enqueue(make_packet(1), 1.5)
        queue.dequeue(3.0)
        times, lengths = trace.sample(step_s=1.0, until=4.0)
        assert list(times) == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert list(lengths) == [0.0, 1.0, 2.0, 1.0, 1.0]

    def test_sample_empty_trace(self):
        trace = QueueTrace(DropTailQueue())
        times, lengths = trace.sample(step_s=0.5, until=2.0)
        assert np.all(lengths == 0.0)
        with pytest.raises(ValueError):
            trace.sample(step_s=0.0, until=2.0)

    def test_mean_length_time_weighted(self):
        queue = DropTailQueue()
        trace = QueueTrace(queue)
        queue.enqueue(make_packet(0), 0.0)   # length 1 from t=0
        queue.dequeue(4.0)                   # length 0 from t=4
        # Mean over [0, 8]: 1 * 4/8 = 0.5.
        assert trace.mean_length(until=8.0) == pytest.approx(0.5)

    def test_mean_length_empty(self):
        trace = QueueTrace(DropTailQueue())
        assert trace.mean_length(until=5.0) == 0.0

    def test_max_length(self):
        queue = DropTailQueue()
        trace = QueueTrace(queue)
        assert trace.max_length() == 0
        for seq in range(5):
            queue.enqueue(make_packet(seq), float(seq))
        queue.dequeue(10.0)
        assert trace.max_length() == 5
