"""Tests for the application workload models."""

import random

import pytest

from repro.sim.engine import Simulator
from repro.sim.workload import (AlwaysOnWorkload, OnOffWorkload,
                                ScheduledWorkload)


class FakeSender:
    def __init__(self):
        self.transitions = []

    def set_on(self, now):
        self.transitions.append(("on", now))

    def set_off(self, now):
        self.transitions.append(("off", now))


class TestOnOffWorkload:
    def test_alternates_on_off(self):
        sim = Simulator()
        sender = FakeSender()
        workload = OnOffWorkload(sim, sender, mean_on_s=1.0,
                                 mean_off_s=1.0, rng=random.Random(7))
        workload.start()
        sim.run(until=50.0)
        kinds = [k for k, _ in sender.transitions]
        for a, b in zip(kinds, kinds[1:]):
            assert a != b
        assert kinds[0] == "on"

    def test_on_time_accounting(self):
        sim = Simulator()
        sender = FakeSender()
        workload = OnOffWorkload(sim, sender, mean_on_s=1.0,
                                 mean_off_s=1.0, rng=random.Random(3))
        workload.start()
        sim.run(until=200.0)
        on_time = workload.on_time(200.0)
        # Stationary expectation is half the horizon.
        assert 0.3 * 200 < on_time < 0.7 * 200
        # Cross-check against the recorded transitions.
        total = 0.0
        started = None
        for kind, at in sender.transitions:
            if kind == "on":
                started = at
            else:
                total += at - started
                started = None
        if started is not None:
            total += 200.0 - started
        assert on_time == pytest.approx(total)

    def test_deterministic_given_seed(self):
        def run(seed):
            sim = Simulator()
            sender = FakeSender()
            workload = OnOffWorkload(sim, sender, 1.0, 1.0,
                                     rng=random.Random(seed))
            workload.start()
            sim.run(until=30.0)
            return sender.transitions

        assert run(11) == run(11)
        assert run(11) != run(12)

    def test_zero_off_time_is_always_on(self):
        sim = Simulator()
        sender = FakeSender()
        workload = OnOffWorkload(sim, sender, mean_on_s=0.5,
                                 mean_off_s=0.0, rng=random.Random(1))
        workload.start()
        sim.run(until=20.0)
        assert workload.on_time(20.0) == pytest.approx(20.0, rel=1e-6)

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            OnOffWorkload(sim, FakeSender(), mean_on_s=0.0,
                          mean_off_s=1.0, rng=random.Random(1))
        with pytest.raises(ValueError):
            OnOffWorkload(sim, FakeSender(), mean_on_s=1.0,
                          mean_off_s=-1.0, rng=random.Random(1))

    def test_mean_durations_roughly_exponential(self):
        sim = Simulator()
        sender = FakeSender()
        workload = OnOffWorkload(sim, sender, mean_on_s=1.0,
                                 mean_off_s=2.0, rng=random.Random(5))
        workload.start()
        sim.run(until=3000.0)
        ons, offs = [], []
        previous = None
        for kind, at in sender.transitions:
            if previous is not None:
                duration = at - previous[1]
                (ons if previous[0] == "on" else offs).append(duration)
            previous = (kind, at)
        assert sum(ons) / len(ons) == pytest.approx(1.0, rel=0.2)
        assert sum(offs) / len(offs) == pytest.approx(2.0, rel=0.2)


class TestScheduledWorkload:
    def test_exact_intervals(self):
        sim = Simulator()
        sender = FakeSender()
        workload = ScheduledWorkload(sim, sender,
                                     intervals=[(5.0, 10.0), (12.0, 13.0)])
        workload.start()
        sim.run(until=20.0)
        assert sender.transitions == [("on", 5.0), ("off", 10.0),
                                      ("on", 12.0), ("off", 13.0)]
        assert workload.on_time(20.0) == pytest.approx(6.0)

    def test_rejects_overlapping_intervals(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            ScheduledWorkload(sim, FakeSender(),
                              intervals=[(0.0, 5.0), (4.0, 6.0)])

    def test_rejects_empty_interval(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            ScheduledWorkload(sim, FakeSender(), intervals=[(3.0, 3.0)])


class TestAlwaysOnWorkload:
    def test_turns_on_at_zero_and_stays(self):
        sim = Simulator()
        sender = FakeSender()
        workload = AlwaysOnWorkload(sim, sender)
        workload.start()
        sim.run(until=10.0)
        assert sender.transitions == [("on", 0.0)]
        assert workload.on_time(10.0) == pytest.approx(10.0)
